(* Tests for the shared multi-pair abstraction engine: verdict /
   report / minimal-automaton equivalence with the legacy per-pair path
   across every bundled example spec (x jobs x --reduce kind), the
   on-the-fly early-decision pass, the quotient-cache hooks at the
   analysis level, and the engine-versioned store keys at the server
   level (pre-engine entries must never replay as shared-pass
   results). *)

module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom
module Sym = Fsa_sym.Sym
module Analysis = Fsa_core.Analysis
module Auth = Fsa_requirements.Auth
module Parser = Fsa_spec.Parser
module Elaborate = Fsa_spec.Elaborate
module Server = Fsa_server.Server
module Exec = Fsa_server.Server.Exec
module Json = Fsa_store.Json
module Store = Fsa_store.Store
module V = Fsa_vanet.Vehicle_apa

let render r = Fmt.str "%a" Analysis.pp_tool_report r

(* ------------------------------------------------------------------ *)
(* Equivalence with the legacy per-pair path                           *)
(* ------------------------------------------------------------------ *)

(* The legacy baseline is computed once per (model, reduction) at
   jobs = 1: explore_par is bit-identical to the sequential exploration
   (gated in test_lts), so the shared runs at jobs 2 and 4 compare
   against the same reference. *)
let check_shared_equals_legacy name ?guard_sig apa =
  let stakeholder = V.stakeholder in
  List.iter
    (fun kind ->
      let reduce = Option.map (fun k -> Sym.plan ?guard_sig k apa) kind in
      let legacy = Analysis.tool ?reduce ~shared:false ~stakeholder apa in
      Alcotest.(check bool)
        (name ^ ": legacy path has no shared timing section")
        true
        (legacy.Analysis.t_timings.Analysis.ph_shared = None);
      let legacy_report = render legacy in
      List.iter
        (fun jobs ->
          let sh = Analysis.tool ~jobs ?reduce ~stakeholder apa in
          let label =
            Printf.sprintf "%s/--reduce %s/jobs %d" name
              (match kind with
              | None -> "none"
              | Some k -> Sym.kind_to_string k)
              jobs
          in
          Alcotest.(check string)
            (label ^ ": rendered report byte-identical")
            legacy_report (render sh);
          Alcotest.(check bool)
            (label ^ ": requirement sets identical")
            true
            (Auth.equal_set legacy.Analysis.t_requirements
               sh.Analysis.t_requirements))
        [ 1; 2; 4 ])
    [ None; Some Sym.Sym; Some Sym.Sym_por ]

let test_shared_identical_vanet () =
  check_shared_equals_legacy "two-vehicles" ~guard_sig:V.guard_attest
    (V.two_vehicles ());
  check_shared_equals_legacy "four-vehicles" ~guard_sig:V.guard_attest
    (V.four_vehicles ())

let test_shared_identical_specs () =
  match Test_check.spec_dir () with
  | None -> ()
  | Some dir ->
    let analysed = ref 0 in
    List.iter
      (fun path ->
        match Parser.parse_file path with
        | exception _ -> ()
        | spec -> (
          match Elaborate.apa_of_spec spec with
          | exception (Fsa_spec.Loc.Error _ | Invalid_argument _) -> ()
          | apa ->
            incr analysed;
            let sigs = Elaborate.guard_signatures spec in
            let guard_sig n = List.assoc_opt n sigs in
            check_shared_equals_legacy (Filename.basename path) ~guard_sig apa))
      (Test_check.example_files dir);
    Alcotest.(check bool) "at least one spec analysed" true (!analysed > 0)

(* The shared engine must actually answer the pairs: its timing section
   is present and the per-pair rows keep only the compare stage (the
   erase/determinise/minimise cost lives in the shared build). *)
let test_shared_timing_section () =
  let r = Analysis.tool ~stakeholder:V.stakeholder (V.four_vehicles ()) in
  match r.Analysis.t_timings.Analysis.ph_shared with
  | None -> Alcotest.fail "expected a shared timing section"
  | Some s ->
    Alcotest.(check bool) "fresh build" false s.Analysis.sh_cached;
    Alcotest.(check bool) "quotient has states" true (s.Analysis.sh_dfa_states > 0);
    Alcotest.(check bool)
      "alphabet covers minima and maxima" true
      (s.Analysis.sh_alphabet_size
      = List.length r.Analysis.t_minima + List.length r.Analysis.t_maxima);
    List.iter
      (fun pt ->
        if not pt.Analysis.pt_pruned then (
          Alcotest.(check bool)
            "per-pair erase stage empty" true
            (pt.Analysis.pt_erase_ns = 0L);
          Alcotest.(check bool)
            "per-pair determinise stage empty" true
            (pt.Analysis.pt_determinise_ns = 0L);
          Alcotest.(check bool)
            "per-pair minimise stage empty" true
            (pt.Analysis.pt_minimise_ns = 0L)))
      r.Analysis.t_timings.Analysis.ph_pairs

(* ------------------------------------------------------------------ *)
(* The engine itself: verdicts, projection, early decisions            *)
(* ------------------------------------------------------------------ *)

let engine_of lts minima maxima =
  let alphabet =
    Action.Set.union (Action.Set.of_list minima) (Action.Set.of_list maxima)
  in
  Hom.Shared.build ~alphabet ~minima ~maxima lts

let test_engine_verdicts_match_per_pair () =
  let r = Analysis.tool ~stakeholder:V.stakeholder (V.four_vehicles ()) in
  let lts = r.Analysis.t_lts in
  let minima = r.Analysis.t_minima and maxima = r.Analysis.t_maxima in
  let e = engine_of lts minima maxima in
  (* a cached engine (quotient injected, graph never walked) must give
     the same verdicts, with the early-decision pass skipped *)
  let e' =
    Hom.Shared.build ~dfa:(Hom.Shared.dfa e)
      ~alphabet:(Hom.Shared.alphabet e) ~minima ~maxima lts
  in
  Alcotest.(check bool) "injected quotient reports cached" true
    (Hom.Shared.cached e');
  Alcotest.(check int) "no early pass on a cached engine" 0
    (Hom.Shared.early_count e');
  List.iter
    (fun mn ->
      List.iter
        (fun mx ->
          let expected =
            Analysis.dependence ~meth:Analysis.Abstract lts ~min_action:mn
              ~max_action:mx
          in
          Alcotest.(check bool)
            (Fmt.str "verdict (%a, %a)" Action.pp mn Action.pp mx)
            expected
            (Hom.Shared.depends e ~min_action:mn ~max_action:mx);
          Alcotest.(check bool)
            (Fmt.str "cached verdict (%a, %a)" Action.pp mn Action.pp mx)
            expected
            (Hom.Shared.depends e' ~min_action:mn ~max_action:mx))
        maxima)
    minima

let test_engine_minimal_automata () =
  let r = Analysis.tool ~stakeholder:V.stakeholder (V.four_vehicles ()) in
  let lts = r.Analysis.t_lts in
  let minima = r.Analysis.t_minima and maxima = r.Analysis.t_maxima in
  let e = engine_of lts minima maxima in
  List.iter
    (fun mn ->
      List.iter
        (fun mx ->
          let shared = Hom.Shared.minimal_automaton e ~min_action:mn ~max_action:mx in
          let legacy = Hom.minimal_automaton (Hom.preserve [ mn; mx ]) lts in
          Alcotest.(check bool)
            (Fmt.str "isomorphic (%a, %a)" Action.pp mn Action.pp mx)
            true
            (Hom.A.Dfa.isomorphic shared legacy);
          (* the exported artefact: canonical renderings byte-identical *)
          Alcotest.(check string)
            (Fmt.str "canonical dot (%a, %a)" Action.pp mn Action.pp mx)
            (Hom.A.Dfa.dot (Hom.A.Dfa.canonicalize legacy))
            (Hom.A.Dfa.dot (Hom.A.Dfa.canonicalize shared)))
        maxima)
    minima

let test_engine_rejects_foreign_pair () =
  let r = Analysis.tool ~stakeholder:V.stakeholder (V.two_vehicles ()) in
  let e = engine_of r.Analysis.t_lts r.Analysis.t_minima r.Analysis.t_maxima in
  let foreign = Action.make "not_in_alphabet" in
  Alcotest.(check bool) "pair outside the alphabet raises" true
    (match
       Hom.Shared.depends e ~min_action:foreign
         ~max_action:(List.hd r.Analysis.t_maxima)
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Quotient-cache hooks (analysis level)                               *)
(* ------------------------------------------------------------------ *)

let test_quotient_cache_hooks () =
  let apa = V.four_vehicles () in
  let stakeholder = V.stakeholder in
  let stored = ref None in
  let finds = ref 0 and stores = ref 0 in
  let qc =
    { Analysis.qc_find =
        (fun ~alphabet:_ ->
          incr finds;
          !stored);
      qc_store =
        (fun ~alphabet:_ dfa ->
          incr stores;
          stored := Some dfa) }
  in
  let r1 = Analysis.tool ~quotient_cache:qc ~stakeholder apa in
  Alcotest.(check int) "miss consults the cache" 1 !finds;
  Alcotest.(check int) "fresh quotient is stored" 1 !stores;
  (match r1.Analysis.t_timings.Analysis.ph_shared with
  | Some s -> Alcotest.(check bool) "first run is uncached" false s.Analysis.sh_cached
  | None -> Alcotest.fail "expected a shared timing section");
  let r2 = Analysis.tool ~quotient_cache:qc ~stakeholder apa in
  Alcotest.(check int) "hit consults the cache" 2 !finds;
  Alcotest.(check int) "hit is not re-stored" 1 !stores;
  (match r2.Analysis.t_timings.Analysis.ph_shared with
  | Some s -> Alcotest.(check bool) "second run is cached" true s.Analysis.sh_cached
  | None -> Alcotest.fail "expected a shared timing section");
  Alcotest.(check string) "reports byte-identical across hit and miss"
    (render r1) (render r2)

(* ------------------------------------------------------------------ *)
(* Store integration (server level)                                    *)
(* ------------------------------------------------------------------ *)

let parse s = Parser.parse_string s

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let entries_of_kind dir kind =
  let affix = Printf.sprintf "\"kind\":%S" kind in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.filter_map (fun f ->
         let path = Filename.concat dir f in
         if contains ~affix (read_file path) then Some path else None)

let shared_cached o =
  match
    Option.bind
      (Option.bind (Json.member "timings" o.Exec.oc_result)
         (Json.member "shared"))
      (Json.member "cached")
  with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.fail "result has no timings.shared.cached member"

let with_store f () =
  let dir = Test_store.tmp_dir () in
  Fun.protect
    ~finally:(fun () -> Test_store.rm_rf dir)
    (fun () -> f (Store.open_ ~dir ()) dir)

(* Shared-pass and per-pair outcomes live under distinct keys (the
   ["engine"] param): neither replays as the other, while both render
   the identical human report. *)
let test_engine_cache_keys =
  with_store (fun st _dir ->
      let cfg = Server.config ~store:st () in
      let spec = parse Test_store.spec_text in
      let run shared =
        Exec.run cfg ~op:Exec.Requirements ~shared ~file:"a.fsa" spec
      in
      let o1 = run false in
      Alcotest.(check bool) "legacy run computes" false o1.Exec.oc_cached;
      let o2 = run false in
      Alcotest.(check bool) "legacy outcome replays" true o2.Exec.oc_cached;
      let o3 = run true in
      Alcotest.(check bool) "legacy entry does not serve the shared engine"
        false o3.Exec.oc_cached;
      let o4 = run true in
      Alcotest.(check bool) "shared outcome replays" true o4.Exec.oc_cached;
      Alcotest.(check string) "reports identical across engines"
        o1.Exec.oc_output o3.Exec.oc_output)

(* An entry written under the pre-engine key format (no ["engine"]
   param — what earlier releases produced) must never replay as a
   shared-pass result. *)
let test_pre_engine_entry_not_replayed =
  with_store (fun st _dir ->
      let spec = parse Test_store.spec_text in
      let digest = Elaborate.digest_of_spec ~parts:[ `Apa ] spec in
      let stale_key =
        Store.cache_key ~digest ~kind:"requirements"
          ~params:[ ("max_states", "1000000"); ("method", "abstract") ]
      in
      Store.add st
        { Store.e_key = stale_key;
          e_kind = "requirements";
          e_result = Json.Obj [];
          e_output = "stale pre-engine entry";
          e_exit = 0 };
      let cfg = Server.config ~store:st () in
      let o = Exec.run cfg ~op:Exec.Requirements ~file:"a.fsa" spec in
      Alcotest.(check bool) "stale entry is not replayed" false o.Exec.oc_cached;
      Alcotest.(check bool) "fresh report computed" false
        (String.equal o.Exec.oc_output "stale pre-engine entry"))

(* The shared quotient is persisted under kind ["quotient"] and reused
   when the outcome entry is gone; corrupt or bogus quotient entries
   are silent misses with identical verdicts. *)
let test_quotient_reuse_and_corruption =
  with_store (fun st dir ->
      let cfg = Server.config ~store:st () in
      let spec = parse Test_store.spec_text in
      let run () = Exec.run cfg ~op:Exec.Requirements ~file:"a.fsa" spec in
      let delete_outcome () =
        match entries_of_kind dir "requirements" with
        | [ p ] -> Sys.remove p
        | ps ->
          Alcotest.failf "expected one requirements entry, found %d"
            (List.length ps)
      in
      let quotient_entry () =
        match entries_of_kind dir "quotient" with
        | [ q ] -> q
        | qs ->
          Alcotest.failf "expected one quotient entry, found %d"
            (List.length qs)
      in
      let o1 = run () in
      Alcotest.(check bool) "first run computes" false o1.Exec.oc_cached;
      Alcotest.(check bool) "first run builds the quotient fresh" false
        (shared_cached o1);
      ignore (quotient_entry ());
      (* outcome gone, quotient kept: the engine is rebuilt from the
         store without re-walking the graph *)
      delete_outcome ();
      let o2 = run () in
      Alcotest.(check bool) "outcome is a miss" false o2.Exec.oc_cached;
      Alcotest.(check bool) "quotient is a hit" true (shared_cached o2);
      Alcotest.(check bool) "requirements identical off the cached quotient"
        true
        (Json.member "requirements" o2.Exec.oc_result
        = Json.member "requirements" o1.Exec.oc_result);
      Alcotest.(check string) "rendered report identical" o1.Exec.oc_output
        o2.Exec.oc_output;
      (* truncated entry bytes: fails the store checksum, so a miss *)
      delete_outcome ();
      (let q = quotient_entry () in
       let s = read_file q in
       write_file q (String.sub s 0 (String.length s / 2)));
      let o3 = run () in
      Alcotest.(check bool) "corrupt quotient entry is a miss" false
        (shared_cached o3);
      Alcotest.(check string) "verdicts unchanged after corruption"
        o1.Exec.oc_output o3.Exec.oc_output;
      (* well-formed entry, bogus payload: the DFA decoder must reject
         it rather than trust the bytes *)
      delete_outcome ();
      (let q = quotient_entry () in
       let key = Filename.remove_extension (Filename.basename q) in
       Store.add st
         { Store.e_key = key;
           e_kind = "quotient";
           e_result = Json.Str "not a dfa";
           e_output = "";
           e_exit = 0 });
      let o4 = run () in
      Alcotest.(check bool) "bogus quotient payload is a miss" false
        (shared_cached o4);
      Alcotest.(check string) "verdicts unchanged after bogus payload"
        o1.Exec.oc_output o4.Exec.oc_output)

let suite =
  [ Alcotest.test_case "shared = legacy (vanet builders)" `Quick
      test_shared_identical_vanet;
    Alcotest.test_case "shared = legacy (example specs)" `Slow
      test_shared_identical_specs;
    Alcotest.test_case "shared timing section" `Quick
      test_shared_timing_section;
    Alcotest.test_case "engine verdicts = per-pair" `Quick
      test_engine_verdicts_match_per_pair;
    Alcotest.test_case "projected minimal automata" `Quick
      test_engine_minimal_automata;
    Alcotest.test_case "foreign pair rejected" `Quick
      test_engine_rejects_foreign_pair;
    Alcotest.test_case "quotient cache hooks" `Quick
      test_quotient_cache_hooks;
    Alcotest.test_case "engine-versioned cache keys" `Quick
      test_engine_cache_keys;
    Alcotest.test_case "pre-engine entry never replays" `Quick
      test_pre_engine_entry_not_replayed;
    Alcotest.test_case "quotient reuse and corruption" `Quick
      test_quotient_reuse_and_corruption ]
