(* First-order data terms: the information items flowing through a system of
   systems, e.g. [cam(pos1)], [sW], [warn(pos2)].  Variables stand for yet
   unknown data (used by pattern matching in APA rules and by requirement
   generalisation). *)

module String_map = Map.Make (String)
module String_set = Set.Make (String)

type t =
  | Sym of string
  | Int of int
  | Var of string
  | App of string * t list

(* Interned terms (below) make physically-equal representatives common on
   the exploration hot path, so every comparison starts with a pointer
   check before falling back to the structural walk. *)
let rec compare a b =
  if a == b then 0
  else
  match a, b with
  | Sym x, Sym y -> String.compare x y
  | Sym _, _ -> -1
  | _, Sym _ -> 1
  | Int x, Int y -> Stdlib.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Var x, Var y -> String.compare x y
  | Var _, _ -> -1
  | _, Var _ -> 1
  | App (f, xs), App (g, ys) ->
    let c = String.compare f g in
    if c <> 0 then c else compare_list xs ys

and compare_list xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_list xs' ys'

let equal a b = a == b || compare a b = 0

(* Deliberately break-free: printed terms serve as stable identifiers
   (DOT node ids, test expectations). *)
let rec pp ppf = function
  | Sym s -> Fmt.string ppf s
  | Int i -> Fmt.int ppf i
  | Var v -> Fmt.pf ppf "?%s" v
  | App (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp) args

let to_string t = Fmt.str "%a" pp t

let sym s = Sym s
let int i = Int i
let var v = Var v

let app f args = if args = [] then Sym f else App (f, args)

(* A cheap structural hash; collision-tolerant users pair it with
   [equal]. *)
let rec hash = function
  | Sym s -> 0x531 * Hashtbl.hash s
  | Int i -> 0x9e5 * (i + 1)
  | Var v -> 0x2cb * Hashtbl.hash v
  | App (f, args) ->
    List.fold_left
      (fun acc a -> (acc * 31) + hash a)
      (0x7f1 * Hashtbl.hash f)
      args
    land max_int

(* Hash-consing.  [intern t] returns a canonical representative of [t]
   whose subterms are themselves canonical, so that repeatedly produced
   terms (the same message flowing through the same rule on every path of
   the exploration) become physically equal and the [==] fast paths in
   [compare]/[equal] fire.  Pools are per-domain (no locking): two domains
   may intern the same term into distinct representatives, which costs the
   fast path across domains but never affects correctness — [equal] falls
   back to the structural walk. *)
module Pool = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let pool_key = Domain.DLS.new_key (fun () -> Pool.create 1024)

let rec intern t =
  let pool = Domain.DLS.get pool_key in
  match Pool.find_opt pool t with
  | Some u -> u
  | None ->
    let u =
      match t with
      | Sym _ | Int _ | Var _ -> t
      | App (f, args) ->
        let args' = List.map intern args in
        if List.for_all2 ( == ) args args' then t else App (f, args')
    in
    Pool.replace pool u u;
    u

let rec vars = function
  | Sym _ | Int _ -> String_set.empty
  | Var v -> String_set.singleton v
  | App (_, args) ->
    List.fold_left
      (fun acc a -> String_set.union acc (vars a))
      String_set.empty args

let is_ground t = String_set.is_empty (vars t)

let rec size = function
  | Sym _ | Int _ | Var _ -> 1
  | App (_, args) -> List.fold_left (fun acc a -> acc + size a) 1 args

let rec map_vars f = function
  | (Sym _ | Int _) as t -> t
  | Var v as t -> ( match f v with Some u -> u | None -> t)
  | App (g, args) -> App (g, List.map (map_vars f) args)

let rename prefix t = map_vars (fun v -> Some (Var (prefix ^ v))) t

(* Substitutions: finite maps from variable names to terms. *)
module Subst = struct
  type term = t

  type nonrec t = t String_map.t

  let empty = String_map.empty
  let singleton v t = String_map.singleton v t
  let find v s = String_map.find_opt v s
  let bindings s = String_map.bindings s
  let is_empty = String_map.is_empty

  let add v t s =
    match String_map.find_opt v s with
    | None -> Some (String_map.add v t s)
    | Some t' -> if equal t t' then Some s else None

  let apply s t = map_vars (fun v -> String_map.find_opt v s) t

  (* Merge two substitutions; [None] on conflicting bindings. *)
  let merge s1 s2 =
    String_map.fold
      (fun v t acc ->
        match acc with None -> None | Some s -> add v t s)
      s2 (Some s1)

  let pp ppf s =
    let pp_binding ppf (v, t) = Fmt.pf ppf "%s := %a" v pp t in
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:semi pp_binding) (bindings s)
end

(* One-way pattern matching: find a substitution [s] such that
   [Subst.apply s pattern = target].  The target must be ground for the
   result to be a true matcher, but we do not enforce this. *)
let match_ ~pattern ~target =
  let rec go s pattern target =
    match s with
    | None -> None
    | Some sub -> (
      match pattern, target with
      | Var v, t -> Subst.add v t sub
      | Sym a, Sym b -> if String.equal a b then s else None
      | Int a, Int b -> if a = b then s else None
      | App (f, xs), App (g, ys) ->
        if String.equal f g && List.length xs = List.length ys then
          List.fold_left2 go s xs ys
        else None
      | (Sym _ | Int _ | App _), _ -> None)
  in
  go (Some Subst.empty) pattern target

(* Syntactic unification (no occurs-check shortcuts taken: terms are small). *)
let unify a b =
  let rec occurs v = function
    | Var w -> String.equal v w
    | Sym _ | Int _ -> false
    | App (_, args) -> List.exists (occurs v) args
  in
  let rec go s a b =
    match s with
    | None -> None
    | Some sub -> (
      let a = Subst.apply sub a and b = Subst.apply sub b in
      match a, b with
      | Var v, t | t, Var v ->
        if equal (Var v) t then s
        else if occurs v t then None
        else
          (* apply the new binding to the existing range *)
          let sub = String_map.map (map_vars (fun w ->
            if String.equal w v then Some t else None)) sub in
          Subst.add v t sub
      | Sym x, Sym y -> if String.equal x y then s else None
      | Int x, Int y -> if x = y then s else None
      | App (f, xs), App (g, ys) ->
        if String.equal f g && List.length xs = List.length ys then
          List.fold_left2 go s xs ys
        else None
      | (Sym _ | Int _ | App _), _ -> None)
  in
  go (Some Subst.empty) a b

(* Parsing.  Grammar: term := ident [ '(' term {',' term} ')' ] | int
   An identifier starting with a capital letter stays a symbol; variables are
   written with a leading '?' in output but parsed from a leading underscore
   or from the dedicated [var] constructor — in textual input we treat
   single lowercase identifiers as symbols and identifiers prefixed with '_'
   as variables, which keeps the paper's notation unchanged. *)
let parse_term lx =
  let rec term () =
    match Lexer.next lx with
    | Lexer.Int i -> Int i
    | Lexer.Ident id ->
      if Lexer.peek lx = Lexer.Lparen then (
        Lexer.expect lx Lexer.Lparen ~what:"(";
        let args = args [] in
        App (id, args))
      else if String.length id > 1 && id.[0] = '_' then
        Var (String.sub id 1 (String.length id - 1))
      else Sym id
    | _ -> raise (Lexer.Error ("expected a term", 0))
  and args acc =
    let a = term () in
    match Lexer.next lx with
    | Lexer.Comma -> args (a :: acc)
    | Lexer.Rparen -> List.rev (a :: acc)
    | _ -> raise (Lexer.Error ("expected ',' or ')'", 0))
  in
  term ()

let of_string s =
  let lx = Lexer.make s in
  match parse_term lx with
  | t ->
    if Lexer.at_eof lx then Ok t
    else Error (Printf.sprintf "trailing input in term %S" s)
  | exception Lexer.Error (msg, pos) ->
    Error (Printf.sprintf "parse error in term %S at %d: %s" s pos msg)

let of_string_exn s =
  match of_string s with Ok t -> t | Error msg -> invalid_arg msg

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
