lib/model/flow.mli: Fmt Fsa_term
