test/test_random.ml: Fsa_mc Fsa_model Fsa_refine Fsa_requirements Fsa_term Fun List Printf QCheck2 QCheck_alcotest String
