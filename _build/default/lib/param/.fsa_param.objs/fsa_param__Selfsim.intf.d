lib/param/selfsim.mli: Fmt Fsa_apa Fsa_hom Fsa_lts Fsa_mc Fsa_term
