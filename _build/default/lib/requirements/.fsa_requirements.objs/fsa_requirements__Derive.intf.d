lib/requirements/derive.mli: Auth Fsa_model Fsa_term
