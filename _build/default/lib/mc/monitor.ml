(* Runtime verification of authenticity requirements.

   The elicited requirements are properties of every run of the deployed
   system: whenever the effect action happens, the cause action must have
   happened before.  This module compiles a requirement set into a trace
   monitor — the runtime complement of the design-time analysis, usable
   against field logs or simulator traces.

   Monitors are incremental: feed events one by one; verdicts are
   per-requirement and report the position of the first violation. *)

module Action = Fsa_term.Action
module Auth = Fsa_requirements.Auth

type verdict =
  | Satisfied  (* no effect occurrence lacked its cause so far *)
  | Violated of { position : int; missing : Action.t }

let pp_verdict ppf = function
  | Satisfied -> Fmt.string ppf "satisfied"
  | Violated { position; missing } ->
    Fmt.pf ppf "violated at event %d (no prior %a)" position Action.pp missing

let equal_verdict a b =
  match a, b with
  | Satisfied, Satisfied -> true
  | Violated x, Violated y ->
    x.position = y.position && Action.equal x.missing y.missing
  | Satisfied, Violated _ | Violated _, Satisfied -> false

(* Per-requirement monitor state. *)
type cell = {
  requirement : Auth.t;
  mutable cause_seen : bool;
  mutable verdict : verdict;
}

type t = { cells : cell list; mutable position : int }

let of_requirements requirements =
  { cells =
      List.map
        (fun r -> { requirement = r; cause_seen = false; verdict = Satisfied })
        (Auth.normalise requirements);
    position = 0 }

let step t event =
  List.iter
    (fun cell ->
      if Action.equal event (Auth.cause cell.requirement) then
        cell.cause_seen <- true;
      (* the cause may equal the effect only in degenerate models; the
         cause check above runs first, so a self-pair is satisfied *)
      if
        Action.equal event (Auth.effect cell.requirement)
        && (not cell.cause_seen)
        && cell.verdict = Satisfied
      then
        cell.verdict <-
          Violated
            { position = t.position; missing = Auth.cause cell.requirement })
    t.cells;
  t.position <- t.position + 1

let run requirements trace =
  let t = of_requirements requirements in
  List.iter (step t) trace;
  List.map (fun c -> (c.requirement, c.verdict)) t.cells

let verdicts t = List.map (fun c -> (c.requirement, c.verdict)) t.cells

let all_satisfied t = List.for_all (fun c -> c.verdict = Satisfied) t.cells

let violations t =
  List.filter_map
    (fun c ->
      match c.verdict with
      | Satisfied -> None
      | Violated _ -> Some (c.requirement, c.verdict))
    t.cells

let pp_report ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf (r, v) ->
          Fmt.pf ppf "- %a: %a" Auth.pp r pp_verdict v))
    (verdicts t)
