(** Structural (exploration-free) analysis of APA models.

    An APA is structurally a coloured Petri net: state components are
    places, rules are transitions, takes are input arcs (consuming or
    read), puts are output arcs.  Forgetting guards, patterns and the
    set semantics of components yields the {e net skeleton}, an ordinary
    P/T net that over-approximates the APA: every transition of the APA
    is a firing of the skeleton.  Classic structural theory over the
    skeleton's incidence matrix — place and transition invariants,
    siphons and traps — then certifies properties of the APA without
    exploring a single state:

    - a nonnegative place invariant [y] gives [y·m <= y·m0] along every
      run (a put adds at most one element to a set component, a consume
      removes exactly one, so the skeleton bounds the real growth), so a
      component covered by a positive invariant is {b bounded};
    - a component covered by no invariant whose net production (row sum)
      is positive is {b potentially unbounded} — the structural
      explanation behind [State_space_too_large];
    - an unguarded rule that consumes (or reads) a term in a component
      and puts back a strictly larger instance of the same pattern
      re-enables itself forever: the state space is {b certified
      infinite};
    - a {b siphon} (every rule producing into the set also takes from
      it) stays empty once drained; a {b trap} (every rule consuming
      from the set also puts into it) stays marked once marked.  Every
      minimal siphon containing an initially marked trap is Commoner's
      deadlock-freedom argument, stated here at skeleton level (patterns
      and guards may still deadlock the APA — certificates say so);
    - two rules with no directed token flow between them are
      {b statically independent}: deleting the firings of the first
      (and their downward closure) from any run leaves a valid run, so
      functional dependence between their actions is impossible and
      {!Fsa_core} can skip the homomorphism work for such (min, max)
      pairs without changing any result.

    All computations are exact (rational Gaussian elimination,
    exhaustive bounded siphon enumeration) and deterministic. *)

module Term = Fsa_term.Term
module Apa = Fsa_apa.Apa

(** {1 Net skeleton} *)

type place = { pl_name : string; pl_initial : Term.Set.t }

type rule_sig = {
  rs_name : string;
  rs_takes : (string * Term.t * bool) list;
      (** component, pattern, consuming? ([false] = read) *)
  rs_puts : (string * Term.t) list;  (** component, template *)
  rs_guarded : bool;
      (** [true] when the guard is non-trivial or unknown; guarded rules
          are excluded from the unboundedness certificate *)
}

type net = { n_places : place list; n_rules : rule_sig list }

val of_apa : Apa.t -> net
(** The net skeleton of an APA.  A rule is recorded as guarded unless
    [Apa.r_trivial_guard] proves its guard is the constant [true]. *)

(** {1 Incidence matrix and invariants} *)

type incidence = {
  i_places : string array;
  i_rules : string array;
  i_matrix : int array array;
      (** [i_matrix.(p).(r)] = puts of rule [r] into place [p] minus its
          consuming takes from [p] (reads do not count) *)
}

val incidence : net -> incidence

val kernel : int array array -> int array list
(** Basis of the right kernel [{x | A x = 0}] of an integer matrix, by
    exact rational Gaussian elimination.  Each basis vector is scaled to
    the smallest integer vector with positive leading nonzero entry;
    the basis is ordered by free column and the result is deterministic. *)

val p_invariants : incidence -> int array list
(** Basis of [{y | y^T C = 0}], indexed like [i_places]. *)

val t_invariants : incidence -> int array list
(** Basis of [{x | C x = 0}], indexed like [i_rules]. *)

val bounds : net -> incidence -> (string * int) list
(** Components covered by a nonnegative place invariant, with the bound
    [y·m0 / y_p] on their cardinality (sorted by name).  Conservative:
    only invariant basis vectors (or their negations) that are
    componentwise nonnegative are used, so coverage may be missed but is
    never wrong. *)

val growth : incidence -> (string * int) list
(** Net structural production per component (row sums), most growing
    first, ties by name. *)

val growth_hint : net -> string
(** Human fragment naming the top-3 components with positive net
    production, e.g. ["; fastest-growing components: ledger (+1), ..."];
    empty when nothing grows.  Used to enrich
    [Lts.State_space_too_large] errors. *)

val potentially_unbounded : net -> incidence -> (string * int) list
(** Components covered by no invariant whose row sum is positive, with
    that row sum (sorted by name). *)

val certified_unbounded : net -> (string * string * string) list
(** Rules certified to make the state space infinite: [(rule, place,
    reason)] where the unguarded rule takes a term matching pattern [p]
    from [place] and puts back a strictly larger term still matching
    [p], all its consuming takes are that single take, and the rule is
    enabled in the producible-shape fixpoint — so it can fire forever,
    producing ever larger terms. *)

(** {1 Siphons and traps} *)

val is_siphon : net -> string list -> bool
val is_trap : net -> string list -> bool

val siphons : ?budget:int -> net -> string list list * bool
(** Minimal siphons (each sorted, list ordered deterministically), and
    whether the enumeration was complete within [budget] search nodes
    (default 10_000).  Nets with more than 62 places are not enumerated
    ([[], false]). *)

val traps : ?budget:int -> net -> string list list * bool
(** Minimal traps, same conventions as {!siphons}. *)

val max_trap_in : net -> string list -> string list
(** The unique maximal trap contained in the given place set (possibly
    empty). *)

val initially_marked : net -> string list -> bool

type deadlock_verdict =
  | Deadlock_free_skeleton
      (** every minimal siphon contains an initially marked trap *)
  | May_deadlock of string list list
      (** minimal siphons without an initially marked trap: draining one
          permanently disables every rule taking from it *)
  | Unknown_budget  (** siphon enumeration was truncated *)

val deadlock : ?budget:int -> net -> deadlock_verdict

(** {1 Static dependence} *)

val flow_edges : net -> (string * string) list
(** Token-flow edges between rules: [r1 -> r2] when a put template of
    [r1] unifies (on the same component, with disjointly renamed
    variables) with a take pattern of [r2].  A sound over-approximation
    of "some firing of [r1] produces a term some firing of [r2] takes or
    reads". *)

val independent : net -> min:string -> max:string -> bool
(** [true] when there is no token-flow path (of length >= 0) from rule
    [min] to rule [max] — then no firing of [max] can causally depend on
    a firing of [min], and the functional dependence test for the pair
    must come out negative.  Unknown rule names are conservatively
    dependent. *)

val independent_all : net -> (string -> string -> bool) Lazy.t
(** Memoized form: forcing the lazy builds the flow graph once; the
    returned function answers {!independent} queries by cached
    reachability. *)

val interferes : rule_sig -> rule_sig -> bool
(** Do two rules touch a common state component with non-commuting
    accesses?  Two reads commute, two puts commute (set union); any
    pairing involving a consuming take, or a put against a take or
    read, interferes.  Rules in different connected components of this
    relation never influence each other's enabledness or effect —
    {!Fsa_sym} builds its ample-set modules from exactly these
    components. *)

val pairs_pruned : Fsa_obs.Metrics.counter
(** The process-wide [struct.pairs_pruned] counter, incremented by
    {!Fsa_core.Analysis} for every (min, max) pair skipped under
    pruning. *)

(** {1 Report} *)

type report = {
  r_places : string array;
  r_rules : string array;
  r_matrix : int array array;
  r_p_invariants : int array list;
  r_t_invariants : int array list;
  r_bounds : (string * int) list;
  r_unbounded : (string * int) list;  (** potentially unbounded, row sum *)
  r_certified : (string * string * string) list;  (** rule, place, reason *)
  r_growth : (string * int) list;
  r_siphons : string list list;
  r_siphons_complete : bool;
  r_traps : string list list;
  r_traps_complete : bool;
  r_verdict : deadlock_verdict;
  r_independent_pairs : int;  (** ordered rule pairs with no flow path *)
  r_rule_pairs : int;  (** all ordered rule pairs (n*(n-1)) *)
}

val analyse : ?budget:int -> net -> report
(** Run the whole structural analysis, under [struct.incidence],
    [struct.invariants] and [struct.siphons] spans. *)

val pp_report : report Fmt.t
val report_to_json : report -> string
(** Deterministic JSON object (fixed key order, trailing newline). *)
