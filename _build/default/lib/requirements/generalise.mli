(** First-order generalisation of requirement families (Sect. 4.4).

    Requirements that recur across SoS instances and differ only in
    instance indices fold into quantified requirements such as
    [forall x in V_forward : auth(pos(GPS_x, pos), show(HMI_w, warn), D_w)].
    Indices may co-vary across the whole triple (e.g.
    [forall x in Followers : auth(gap(RAD_x), actuate(THR_x), Passenger_x)]);
    a requirement generalises when all of its concrete instance indices
    coincide. *)

module Agent = Fsa_term.Agent

type t =
  | Concrete of Auth.t
  | Forall of { var : string; domain : string; schema : Auth.t }

val pp : t Fmt.t
val compare : t -> t -> int
val equal : t -> t -> bool

val generalise :
  ?var:string ->
  ?min_family:int ->
  domain_of:(Agent.t -> string option) ->
  Auth.t list ->
  t list
(** Fold families of [min_family] or more co-indexed requirements whose
    concretely indexed agents share a quantification domain (per
    [domain_of]) into [Forall] form. *)

val expand : domain_members:(string -> int list) -> t -> Auth.t list
val expand_all : domain_members:(string -> int list) -> t list -> Auth.t list

val pp_set : t list Fmt.t
