lib/requirements/auth.mli: Fmt Fsa_term Set
