(* Minimal JSON: a recursive-descent parser and a deterministic compact
   printer.  Cache entries and server messages are small (a few KiB), so
   simplicity beats throughput here. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k, v) (k', v') -> String.equal k k' && equal v v')
         xs ys
  | (Null | Bool _ | Int _ | Float _ | Str _ | List _ | Obj _), _ -> false

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape = Fsa_obs.Metrics.json_escape

let float_repr v =
  if not (Float.is_finite v) then "null"
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.17g" v in
    let shorter = Printf.sprintf "%.15g" v in
    if float_of_string shorter = v then shorter else s

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | List elts ->
    Buffer.add_char b '[';
    List.iteri
      (fun i elt ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b elt)
      elts;
    Buffer.add_char b ']'
  | Obj members ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b "\":";
        to_buffer b v)
      members;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c fmt =
  Printf.ksprintf
    (fun msg ->
      raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos msg)))
    fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    &&
    match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail c "expected %C, found %C" ch x
  | None -> fail c "expected %C, found end of input" ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c "invalid literal"

(* Encode a Unicode scalar value as UTF-8 bytes. *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_hex4 c =
  if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
  let v = int_of_string ("0x" ^ String.sub c.src c.pos 4) in
  c.pos <- c.pos + 4;
  v

let parse_string_body c =
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
      c.pos <- c.pos + 1;
      match peek c with
      | None -> fail c "unterminated escape"
      | Some e ->
        c.pos <- c.pos + 1;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' -> (
          match parse_hex4 c with
          | exception _ -> fail c "invalid \\u escape"
          | u -> add_utf8 b u)
        | e -> fail c "invalid escape \\%C" e);
        go ())
    | Some ch ->
      c.pos <- c.pos + 1;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.src && is_num_char c.src.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c "invalid number %S" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> fail c "invalid number %S" s

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
    c.pos <- c.pos + 1;
    Str (parse_string_body c)
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else
      let rec elts acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          elts (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      List (elts [])
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else
      let member () =
        skip_ws c;
        expect c '"';
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        (k, parse_value c)
      in
      let rec members acc =
        let m = member () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members (m :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev (m :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (members [])
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c "unexpected character %C" ch

let parse src =
  let c = { src; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length src then
      Error (Printf.sprintf "at offset %d: trailing input" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj ms -> List.assoc_opt k ms | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
