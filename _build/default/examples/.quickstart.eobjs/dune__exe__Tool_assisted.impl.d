examples/tool_assisted.ml: Fmt Fsa_apa Fsa_core Fsa_hom Fsa_lts Fsa_mc Fsa_requirements Fsa_vanet
