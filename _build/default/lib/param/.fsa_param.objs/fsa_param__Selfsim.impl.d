lib/param/selfsim.ml: Fmt Fsa_apa Fsa_hom Fsa_lts Fsa_mc Fsa_term Fsa_vanet List String
