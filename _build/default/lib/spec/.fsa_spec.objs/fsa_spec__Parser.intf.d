lib/spec/parser.mli: Ast Lexer
