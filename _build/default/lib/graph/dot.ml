(* Emission of Graphviz DOT text for the graph artefacts produced by the
   analysis: functional flow graphs, reachability graphs and minimal
   automata.  The builder works on pre-rendered node and edge descriptions,
   so it is independent of the vertex type of the graph it visualises. *)

type node = { id : string; attrs : (string * string) list }
type edge = { src : string; dst : string; e_attrs : (string * string) list }

type t = {
  name : string;
  graph_attrs : (string * string) list;
  mutable nodes : node list;
  mutable dot_edges : edge list;
}

let create ?(graph_attrs = []) name =
  { name; graph_attrs; nodes = []; dot_edges = [] }

let node ?(attrs = []) t id = t.nodes <- { id; attrs } :: t.nodes

let edge ?(attrs = []) t src dst =
  t.dot_edges <- { src; dst; e_attrs = attrs } :: t.dot_edges

(* Quote an identifier for DOT output; identifiers coming from action terms
   contain parentheses and commas, so we always quote and escape. *)
let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
    let pp_attr ppf (k, v) = Fmt.pf ppf "%s=%s" k (quote v) in
    Fmt.pf ppf " [%a]" Fmt.(list ~sep:comma pp_attr) attrs

let to_string t =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Fmt.pf ppf "digraph %s {@." (quote t.name);
  List.iter (fun (k, v) -> Fmt.pf ppf "  %s=%s;@." k (quote v)) t.graph_attrs;
  List.iter
    (fun n -> Fmt.pf ppf "  %s%a;@." (quote n.id) pp_attrs n.attrs)
    (List.rev t.nodes);
  List.iter
    (fun e ->
      Fmt.pf ppf "  %s -> %s%a;@." (quote e.src) (quote e.dst) pp_attrs
        e.e_attrs)
    (List.rev t.dot_edges);
  Fmt.pf ppf "}@.";
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
