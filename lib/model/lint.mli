(** Model linting: inspection warnings over functional SoS models
    (isolated actions, unconnected components, degenerate boundary
    actions, singleton policies, uninfluenced outputs, heavy external
    fan-in). *)

module Action = Fsa_term.Action

type warning =
  | Isolated_action of Action.t
  | Unconnected_component of string
  | Degenerate_boundary_action of Action.t
  | Singleton_policy of string * Flow.t
  | Uninfluenced_output of Action.t
  | External_fan_in of Action.t * int

val pp_warning : warning Fmt.t
val severity : warning -> [ `Error | `Warning ]
val pp_severity : [ `Error | `Warning ] Fmt.t

val code : warning -> string
(** Stable diagnostic code (the FSA03x block of the unified code space
    rendered by [Fsa_check.Diagnostic]). *)

val check : Sos.t -> warning list
val errors : Sos.t -> warning list
val pp_report : warning list Fmt.t
