lib/order/poset.ml: Array Fmt Fsa_graph Hashtbl List Printf
