lib/vanet/geo.mli: Fsa_term
