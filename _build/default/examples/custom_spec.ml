(* Loading a user-written specification and running both analysis paths.

   Reads examples/specs/two_vehicles.fsa (or a path given on the command
   line), elaborates its APA and functional-model halves, derives the
   requirements with both methods and cross-validates them.

   Run with: dune exec examples/custom_spec.exe [-- SPEC] *)

module Analysis = Fsa_core.Analysis
module Lts = Fsa_lts.Lts

let default_spec = "examples/specs/two_vehicles.fsa"

(* Tool-path labels of the form <inst>_<label> map onto the manual-path
   actions of the sos declaration by matching the label suffix against the
   component alias and action label. *)
let map_label sos action =
  match String.index_opt (Fsa_term.Action.label action) '_' with
  | None -> None
  | Some i ->
    let s = Fsa_term.Action.label action in
    let alias = String.sub s 0 i in
    let label = String.sub s (i + 1) (String.length s - i - 1) in
    List.find_map
      (fun comp ->
        if String.equal (Fsa_model.Component.name comp) alias then
          List.find_opt
            (fun a -> String.equal (Fsa_term.Action.label a) label)
            (Fsa_model.Component.actions comp)
        else None)
      (Fsa_model.Sos.components sos)

let stakeholder_of_sos sos action =
  (* consistent stakeholders on both sides: the driver of the instance *)
  match map_label sos action with
  | Some manual -> Fsa_requirements.Derive.default_stakeholder manual
  | None -> Fsa_term.Agent.unindexed "SYS"

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else default_spec in
  let spec =
    try Fsa_spec.Parser.parse_file path with
    | Fsa_spec.Loc.Error (loc, msg) ->
      Fmt.epr "%s: %a: %s@." path Fsa_spec.Loc.pp loc msg;
      exit 1
  in

  Fmt.pr "=== tool path (APA model) ===@.";
  let apa = Fsa_spec.Elaborate.apa_of_spec spec in
  let sos =
    match Fsa_spec.Elaborate.sos_list spec with
    | [ sos ] -> sos
    | sos :: _ -> sos
    | [] ->
      Fmt.epr "the specification declares no sos@.";
      exit 1
  in
  let tool = Analysis.tool ~stakeholder:(stakeholder_of_sos sos) apa in
  Fmt.pr "%a@." Analysis.pp_tool_report tool;

  Fmt.pr "@.=== manual path (functional models) ===@.";
  let manual = Analysis.manual sos in
  Fmt.pr "%a@." Analysis.pp_manual_report manual;

  Fmt.pr "@.=== cross-validation ===@.";
  let check =
    Analysis.crosscheck ~map:(map_label sos)
      ~manual_requirements:manual.Analysis.m_requirements
      ~tool_requirements:tool.Analysis.t_requirements
  in
  Fmt.pr "%a@." Analysis.pp_crosscheck check
