(** Elaboration of parsed specifications into APA models (tool path) and
    functional SoS models (manual path).

    All elaboration functions raise {!Loc.Error} on semantic errors. *)

module Term = Fsa_term.Term
module Apa = Fsa_apa.Apa
module Sos = Fsa_model.Sos

type env = {
  components : (string * Ast.component_decl) list;
  instances : Ast.instance_decl list;
  clusters : Ast.cluster_decl list;
  models : (string * Ast.model_decl) list;
  soses : Ast.sos_decl list;
  checks : Ast.check_decl list;
}

val env_of_spec : Ast.t -> env

val term_of_sterm : self:Term.t option -> loc:Loc.t -> Ast.sterm -> Term.t

val compile_cond :
  self:Term.t option -> loc:Loc.t -> Ast.cond -> Term.Subst.t -> bool

val build_instance : env -> Ast.instance_decl -> Apa.t

val apa_of_spec : ?name:string -> Ast.t -> Apa.t
(** Compose all declared instances into one APA, identifying shared state
    components per the cluster declarations. *)

val component_of_model :
  Ast.model_decl -> alias:string -> index:int option -> Fsa_model.Component.t

val sos_list : Ast.t -> Sos.t list
val sos_of_spec : Ast.t -> string -> Sos.t

val patterns_of_spec : Ast.t -> (string * Fsa_mc.Pattern.t) list
(** The spec's [check] declarations as named property patterns. *)
