(* Tests for Fsa_obs: the metrics registry, spans and progress
   reporting.  Timing-sensitive assertions use an injected deterministic
   clock so the expected output is stable. *)

module Metrics = Fsa_obs.Metrics
module Span = Fsa_obs.Span
module Recorder = Fsa_obs.Recorder
module Progress = Fsa_obs.Progress
module Lts = Fsa_lts.Lts
module V = Fsa_vanet.Vehicle_apa

(* The registry, span buffer and recorder ring are process-wide; every
   test starts from a clean slate and leaves observability switched
   off. *)
let with_obs f () =
  Metrics.reset ();
  Span.reset ();
  Recorder.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Span.use_default_clock ();
      Span.reset ();
      Recorder.reset ();
      Metrics.reset ())
    f

let check_contains what sub s =
  if not (String.length sub <= String.length s
         && (let found = ref false in
             for i = 0 to String.length s - String.length sub do
               if String.sub s i (String.length sub) = sub then found := true
             done;
             !found))
  then Alcotest.failf "%s: %S not found in %S" what sub s

(* A fake clock advancing 1000 ns per reading. *)
let install_fake_clock () =
  let t = ref 0L in
  Span.set_clock (fun () ->
      t := Int64.add !t 1000L;
      !t)

let test_counter_arithmetic () =
  let c = Metrics.counter "obs_test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "1 + 41" 42 (Metrics.counter_value c);
  let c' = Metrics.counter "obs_test.counter" in
  Metrics.incr c';
  Alcotest.(check int) "same name, same instrument" 43
    (Metrics.counter_value c);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument
       "Metrics: obs_test.counter is already registered with a different kind")
    (fun () -> ignore (Metrics.gauge "obs_test.counter"))

let test_gauge () =
  let g = Metrics.gauge "obs_test.gauge" in
  Metrics.set_gauge g 3.5;
  Alcotest.(check (float 0.)) "set" 3.5 (Metrics.gauge_value g);
  Metrics.set_gauge_max g 2.0;
  Alcotest.(check (float 0.)) "max keeps larger" 3.5 (Metrics.gauge_value g);
  Metrics.set_gauge_max g 7.25;
  Alcotest.(check (float 0.)) "max raises" 7.25 (Metrics.gauge_value g)

let test_histogram_buckets () =
  let h = Metrics.histogram ~buckets:[| 1.; 2.; 5. |] "obs_test.histogram" in
  List.iter (Metrics.observe h) [ 0.; 1.; 1.5; 2.; 5.; 5.1; 100. ];
  (* le convention: a value lands in the first bucket whose bound >= it *)
  Alcotest.(check (array int)) "bucket counts" [| 2; 2; 1; 2 |]
    (Metrics.histogram_counts h);
  Alcotest.(check int) "count" 7 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 114.6 (Metrics.histogram_sum h)

let test_disabled_records_nothing () =
  Metrics.set_enabled false;
  let c = Metrics.counter "obs_test.counter" in
  let g = Metrics.gauge "obs_test.gauge" in
  let h = Metrics.histogram ~buckets:[| 1.; 2.; 5. |] "obs_test.histogram" in
  Metrics.incr ~by:10 c;
  Metrics.set_gauge g 1.0;
  Metrics.set_gauge_max g 2.0;
  Metrics.observe h 1.0;
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "gauge untouched" 0. (Metrics.gauge_value g);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.histogram_count h);
  install_fake_clock ();
  let r = Span.with_ "disabled.span" (fun () -> 7) in
  Alcotest.(check int) "with_ is transparent" 7 r;
  Alcotest.(check int) "no span recorded" 0 (List.length (Span.events ()));
  Metrics.set_enabled true

let test_span_nesting () =
  install_fake_clock ();
  let r =
    Span.with_ "outer" (fun () ->
        Span.with_ ~cat:"inner-cat" "inner" (fun () -> ());
        Span.with_ ~cat:"inner-cat" "inner2" (fun () -> ());
        "result")
  in
  Alcotest.(check string) "with_ returns the body's value" "result" r;
  match Span.events () with
  | [ outer; inner; inner2 ] ->
    Alcotest.(check string) "outer first" "outer" outer.Span.ev_name;
    Alcotest.(check string) "then inner" "inner" inner.Span.ev_name;
    Alcotest.(check string) "then inner2" "inner2" inner2.Span.ev_name;
    Alcotest.(check int) "outer depth" 0 outer.Span.ev_depth;
    Alcotest.(check int) "inner depth" 1 inner.Span.ev_depth;
    Alcotest.(check string) "category kept" "inner-cat" inner.Span.ev_cat;
    (* clock readings: outer start 1000, inner 2000..3000,
       inner2 4000..5000, outer stop 6000 *)
    Alcotest.(check int64) "inner duration" 1000L inner.Span.ev_dur_ns;
    Alcotest.(check int64) "outer duration" 5000L outer.Span.ev_dur_ns;
    Alcotest.(check bool) "chronological order" true
      (Int64.compare inner.Span.ev_start_ns inner2.Span.ev_start_ns < 0)
  | evs -> Alcotest.failf "expected 3 spans, got %d" (List.length evs)

let test_span_survives_exceptions () =
  install_fake_clock ();
  (try Span.with_ "raising" (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length (Span.events ()))

let test_chrome_json_deterministic () =
  install_fake_clock ();
  Span.with_ "outer" (fun () -> Span.with_ "inner" (fun () -> ()));
  let tid = string_of_int (Domain.self () :> int) in
  let expected =
    Printf.sprintf
      "[\n\
       {\"name\":\"outer\",\"cat\":\"fsa\",\"ph\":\"X\",\"ts\":1.000,\"dur\":3.000,\"pid\":0,\"tid\":%s,\"args\":{\"depth\":0}},\n\
       {\"name\":\"inner\",\"cat\":\"fsa\",\"ph\":\"X\",\"ts\":2.000,\"dur\":1.000,\"pid\":0,\"tid\":%s,\"args\":{\"depth\":1}}\n\
       ]\n"
      tid tid
  in
  Alcotest.(check string) "stable trace output" expected
    (Span.to_chrome_json ());
  Alcotest.(check string) "export does not consume" expected
    (Span.to_chrome_json ())

let test_metrics_json_deterministic () =
  Metrics.incr ~by:3 (Metrics.counter "obs_test.zz_b");
  Metrics.incr ~by:1 (Metrics.counter "obs_test.zz_a");
  let json = Metrics.to_json () in
  Alcotest.(check string) "dump is stable" json (Metrics.to_json ());
  let index sub =
    let rec go i =
      if i + String.length sub > String.length json then
        Alcotest.failf "%s not found in dump" sub
      else if String.sub json i (String.length sub) = sub then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "keys sorted by name" true
    (index "\"obs_test.zz_a\": 1" < index "\"obs_test.zz_b\": 3")

let test_quantile_known_distribution () =
  let h = Metrics.histogram ~buckets:[| 10.; 20.; 50.; 100. |] "obs_test.q" in
  Alcotest.(check (float 1e-9)) "empty histogram" 0. (Metrics.quantile h 0.5);
  for v = 1 to 100 do
    Metrics.observe h (float_of_int v)
  done;
  (* 1..100 uniformly: the interpolated quantiles land on the exact
     values because bucket populations match the bucket widths. *)
  Alcotest.(check (float 1e-9)) "p10" 10. (Metrics.quantile h 0.1);
  Alcotest.(check (float 1e-9)) "p50" 50. (Metrics.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p90" 90. (Metrics.quantile h 0.9);
  Alcotest.(check (float 1e-9)) "p99" 99. (Metrics.quantile h 0.99);
  Alcotest.(check (float 1e-9)) "q clamped above" 100. (Metrics.quantile h 1.5);
  let h2 = Metrics.histogram ~buckets:[| 1.; 2. |] "obs_test.q_overflow" in
  List.iter (Metrics.observe h2) [ 5.; 7.; 9. ];
  Alcotest.(check (float 1e-9)) "overflow reports the last bound" 2.
    (Metrics.quantile h2 0.5)

let test_prometheus_format () =
  Metrics.incr ~by:3 (Metrics.counter "obs_test.prom.count");
  Metrics.set_gauge (Metrics.gauge "obs_test.prom_gauge") 2.5;
  let h = Metrics.histogram ~buckets:[| 1.; 2. |] "obs_test.prom_hist" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 5. ];
  let text = Metrics.to_prometheus () in
  Alcotest.(check string) "export is stable" text (Metrics.to_prometheus ());
  check_contains "sanitised counter" "# TYPE obs_test_prom_count counter\nobs_test_prom_count 3" text;
  check_contains "gauge" "obs_test_prom_gauge 2.5" text;
  check_contains "cumulative bucket 1" "obs_test_prom_hist_bucket{le=\"1\"} 1" text;
  check_contains "cumulative bucket 2" "obs_test_prom_hist_bucket{le=\"2\"} 2" text;
  check_contains "+Inf bucket" "obs_test_prom_hist_bucket{le=\"+Inf\"} 3" text;
  check_contains "sum" "obs_test_prom_hist_sum 7" text;
  check_contains "count" "obs_test_prom_hist_count 3" text

let test_trace_context () =
  install_fake_clock ();
  Span.with_trace ~trace_id:"req-1" (fun () ->
      Alcotest.(check string) "trace visible inside" "req-1"
        (Span.current_trace ());
      Span.with_ "outer" (fun () -> Span.with_ "inner" (fun () -> ())));
  Span.with_ "untracked" (fun () -> ());
  Alcotest.(check string) "trace restored outside" "" (Span.current_trace ());
  let find name = List.find (fun e -> e.Span.ev_name = name) (Span.events ()) in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check string) "outer carries the trace" "req-1" outer.Span.ev_trace;
  Alcotest.(check string) "inner carries the trace" "req-1" inner.Span.ev_trace;
  Alcotest.(check int) "outer is a root" 0 outer.Span.ev_parent;
  Alcotest.(check int) "inner hangs off outer" outer.Span.ev_id
    inner.Span.ev_parent;
  Alcotest.(check string) "span outside the trace" ""
    (find "untracked").Span.ev_trace;
  Alcotest.(check int) "events_for_trace finds exactly the pair" 2
    (List.length (Span.events_for_trace "req-1"))

let test_trace_crosses_domains () =
  install_fake_clock ();
  Span.with_trace ~trace_id:"xd-1" (fun () ->
      Span.with_ "outer" (fun () ->
          let ctx = Span.current_context () in
          let d =
            Domain.spawn (fun () ->
                Span.with_context ctx (fun () ->
                    Span.with_ "child" (fun () -> ())))
          in
          Domain.join d));
  let find name = List.find (fun e -> e.Span.ev_name = name) (Span.events ()) in
  let outer = find "outer" and child = find "child" in
  Alcotest.(check string) "child joined the trace" "xd-1" child.Span.ev_trace;
  Alcotest.(check int) "child hangs off outer across domains"
    outer.Span.ev_id child.Span.ev_parent;
  Alcotest.(check int) "child depth continues the tree" 1 child.Span.ev_depth;
  Alcotest.(check bool) "recorded by different domains" true
    (outer.Span.ev_domain <> child.Span.ev_domain)

let test_recorder_wraparound () =
  Recorder.set_capacity 8;
  Fun.protect ~finally:(fun () -> Recorder.set_capacity 1024) @@ fun () ->
  for i = 0 to 19 do
    Recorder.record Recorder.Error (Printf.sprintf "e%d" i)
  done;
  let evs = Recorder.events () in
  Alcotest.(check int) "ring holds capacity events" 8 (List.length evs);
  Alcotest.(check int) "dropped the excess" 12 (Recorder.dropped ());
  Alcotest.(check (list int)) "the last 8 survive, in order"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun e -> e.Recorder.r_seq) evs);
  Alcotest.(check string) "oldest survivor" "e12"
    (List.hd evs).Recorder.r_detail;
  let dump = Recorder.dump_trace ~trace_id:"" in
  Alcotest.(check string) "dump is deterministic" dump
    (Recorder.dump_trace ~trace_id:"")

let test_recorder_multi_domain_wraparound () =
  Recorder.set_capacity 64;
  Fun.protect ~finally:(fun () -> Recorder.set_capacity 1024) @@ fun () ->
  let doms =
    Array.init 4 (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to 99 do
              Recorder.record
                ~trace:(Printf.sprintf "dom-%d" w)
                Recorder.Enqueue (string_of_int i)
            done))
  in
  Array.iter Domain.join doms;
  Alcotest.(check int) "every record counted" 400 (Recorder.recorded ());
  Alcotest.(check int) "ring full" 64 (Recorder.size ());
  Alcotest.(check int) "dropped = recorded - capacity" 336
    (Recorder.dropped ());
  let evs = Recorder.events () in
  List.iteri
    (fun i ev ->
      Alcotest.(check int) "survivors are the contiguous tail" (336 + i)
        ev.Recorder.r_seq)
    evs

let test_recorder_mirrors_spans () =
  install_fake_clock ();
  Span.with_trace ~trace_id:"ph-1" (fun () ->
      Span.with_ "tool.explore" (fun () -> ()));
  let phases =
    List.filter
      (fun e ->
        e.Recorder.r_kind = Recorder.Phase_start
        || e.Recorder.r_kind = Recorder.Phase_end)
      (Recorder.events_for_trace "ph-1")
  in
  match phases with
  | [ s; e ] ->
    Alcotest.(check string) "phase_start names the span" "tool.explore"
      s.Recorder.r_detail;
    Alcotest.(check bool) "start before end" true
      (s.Recorder.r_kind = Recorder.Phase_start
      && e.Recorder.r_kind = Recorder.Phase_end);
    Alcotest.(check bool) "timestamps ordered" true
      (Int64.compare s.Recorder.r_time_ns e.Recorder.r_time_ns < 0)
  | evs -> Alcotest.failf "expected 2 phase events, got %d" (List.length evs)

let test_progress_throttling () =
  install_fake_clock ();
  let fired = ref [] in
  let p =
    Progress.create ~every_n:2 ~every_ns:Int64.max_int (fun u ->
        fired := (u.Progress.u_count, u.Progress.u_final) :: !fired)
  in
  for count = 1 to 6 do
    Progress.tick p ~count ~frontier:count
  done;
  Progress.finish p ~count:6;
  Alcotest.(check (list (pair int bool)))
    "fires every 2 items, then a final report"
    [ (2, false); (4, false); (6, false); (6, true) ]
    (List.rev !fired)

let test_progress_silent_run () =
  install_fake_clock ();
  let fired = ref 0 in
  let p =
    Progress.create ~every_n:1_000_000 ~every_ns:Int64.max_int (fun _ ->
        incr fired)
  in
  for count = 1 to 100 do
    Progress.tick p ~count ~frontier:0
  done;
  Progress.finish p ~count:100;
  Alcotest.(check int) "below both thresholds: fully silent" 0 !fired

let test_explore_instrumented () =
  let ticks = ref [] in
  let progress =
    Progress.create ~every_n:1 ~every_ns:Int64.max_int (fun u ->
        if not u.Progress.u_final then ticks := u.Progress.u_count :: !ticks)
  in
  let lts = Lts.explore ~progress (V.two_vehicles ()) in
  Alcotest.(check int) "13 states explored" 13 (Lts.nb_states lts);
  Alcotest.(check int) "progress saw the full count" 13
    (List.fold_left max 0 !ticks);
  Alcotest.(check int) "lts.states_explored" 13
    (Metrics.counter_value (Metrics.counter "lts.states_explored"));
  Alcotest.(check bool) "apa.rules_tried nonzero" true
    (Metrics.counter_value (Metrics.counter "apa.rules_tried") > 0);
  Alcotest.(check bool) "lts.explore span recorded" true
    (List.exists
       (fun e -> e.Span.ev_name = "lts.explore")
       (Span.events ()))

let suite =
  [ Alcotest.test_case "counter arithmetic" `Quick (with_obs test_counter_arithmetic);
    Alcotest.test_case "gauge set and max" `Quick (with_obs test_gauge);
    Alcotest.test_case "histogram bucket boundaries" `Quick
      (with_obs test_histogram_buckets);
    Alcotest.test_case "disabled registry records nothing" `Quick
      (with_obs test_disabled_records_nothing);
    Alcotest.test_case "span nesting and ordering" `Quick
      (with_obs test_span_nesting);
    Alcotest.test_case "span survives exceptions" `Quick
      (with_obs test_span_survives_exceptions);
    Alcotest.test_case "chrome trace JSON deterministic" `Quick
      (with_obs test_chrome_json_deterministic);
    Alcotest.test_case "metrics JSON deterministic and sorted" `Quick
      (with_obs test_metrics_json_deterministic);
    Alcotest.test_case "quantile against a known distribution" `Quick
      (with_obs test_quantile_known_distribution);
    Alcotest.test_case "prometheus text exposition" `Quick
      (with_obs test_prometheus_format);
    Alcotest.test_case "trace context threads through spans" `Quick
      (with_obs test_trace_context);
    Alcotest.test_case "trace context crosses domains" `Quick
      (with_obs test_trace_crosses_domains);
    Alcotest.test_case "recorder ring wraparound" `Quick
      (with_obs test_recorder_wraparound);
    Alcotest.test_case "recorder wraparound under multi-domain load" `Quick
      (with_obs test_recorder_multi_domain_wraparound);
    Alcotest.test_case "recorder mirrors span phases" `Quick
      (with_obs test_recorder_mirrors_spans);
    Alcotest.test_case "progress throttling" `Quick
      (with_obs test_progress_throttling);
    Alcotest.test_case "progress silent below thresholds" `Quick
      (with_obs test_progress_silent_run);
    Alcotest.test_case "explore records metrics, spans and progress" `Quick
      (with_obs test_explore_instrumented) ]
