lib/mc/ctl.mli: Fmt Fsa_hom Fsa_lts Fsa_term
