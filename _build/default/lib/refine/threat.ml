(* Threat trees from authenticity requirements (the anti-model view).

   The related work (van Lamsweerde's anti-goals) constructs threat trees
   by refining negated security goals.  With the functional model at
   hand, that construction is mechanical: the anti-goal of a requirement
   auth(x, y, P) is "make y happen although x did not happen (or with
   data not originating from x)"; its refinements are the concrete
   injection points — forging any functional flow on a cause-to-effect
   path, or compromising the origin itself.

   The generated trees make the completeness claim tangible: every leaf
   is an attack vector that the eventual security architecture must
   close, and the minimum protection set of {!Refine} is a minimum leaf
   cover. *)

module Action = Fsa_term.Action
module Auth = Fsa_requirements.Auth
module Flow = Fsa_model.Flow
module Sos = Fsa_model.Sos

type attack =
  | Forge_flow of Flow.t  (* inject or tamper on a functional flow *)
  | Compromise_origin of Action.t  (* subvert the component acting at the origin *)
  | Compromise_sink of Action.t  (* subvert the component acting at the effect *)

type gate = Or | And

type t =
  | Goal of { description : string; gate : gate; children : t list }
  | Leaf of attack

let pp_attack ppf = function
  | Forge_flow f -> Fmt.pf ppf "forge/tamper flow %a" Flow.pp f
  | Compromise_origin a -> Fmt.pf ppf "compromise origin of %a" Action.pp a
  | Compromise_sink a -> Fmt.pf ppf "compromise component of %a" Action.pp a

let rec pp ?(indent = 0) ppf t =
  let pad = String.make (indent * 2) ' ' in
  match t with
  | Leaf a -> Fmt.pf ppf "%s- %a@," pad pp_attack a
  | Goal { description; gate; children } ->
    Fmt.pf ppf "%s+ %s [%s]@," pad description
      (match gate with Or -> "OR" | And -> "AND");
    List.iter (pp ~indent:(indent + 1) ppf) children

let pp_tree ppf t = Fmt.pf ppf "@[<v>%a@]" (fun ppf t -> pp ppf t) t

(* The threat tree of one requirement. *)
let of_requirement sos req =
  let cause = Auth.cause req and effect = Auth.effect req in
  let surface = Refine.channels sos cause effect in
  let injections =
    List.map (fun f -> Leaf (Forge_flow f)) surface
  in
  Goal
    { description =
        Fmt.str "%a happens without authentic %a" Action.pp effect Action.pp
          cause;
      gate = Or;
      children =
        [ Goal
            { description = "inject forged information on a channel";
              gate = Or;
              children = injections };
          Leaf (Compromise_origin cause);
          Leaf (Compromise_sink effect) ] }

let rec leaves = function
  | Leaf a -> [ a ]
  | Goal { children; _ } -> List.concat_map leaves children

let nb_vectors t = List.length (leaves t)

(* The attack vectors that the minimum protection set of {!Refine} does
   not cover: compromising the endpoints themselves.  Channel protection
   never defends against compromised end systems — the paper's Sect. 2
   observation that some approaches "leave attack vectors open, such as
   the manipulation of the sending or receiving vehicle's internal
   communication and computation". *)
let residual_after_channel_protection t =
  List.filter
    (function
      | Compromise_origin _ | Compromise_sink _ -> true
      | Forge_flow _ -> false)
    (leaves t)

(* DOT rendering for inspection. *)
let dot ?(name = "threat_tree") t =
  let d = Fsa_graph.Dot.create ~graph_attrs:[ ("rankdir", "TB") ] name in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "n%d" !counter
  in
  let rec go t =
    let id = fresh () in
    (match t with
    | Leaf a ->
      Fsa_graph.Dot.node
        ~attrs:[ ("label", Fmt.str "%a" pp_attack a); ("shape", "box") ]
        d id
    | Goal { description; gate; children } ->
      Fsa_graph.Dot.node
        ~attrs:
          [ ("label",
             Fmt.str "%s\n[%s]" description
               (match gate with Or -> "OR" | And -> "AND")) ]
        d id;
      List.iter (fun c -> Fsa_graph.Dot.edge d id (go c)) children);
    id
  in
  ignore (go t);
  Fsa_graph.Dot.to_string d
