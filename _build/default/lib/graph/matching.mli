(** Maximum bipartite matching (Kuhn's algorithm). *)

type t

val maximum : left:int -> right:int -> adj:(int -> int list) -> t
(** [maximum ~left ~right ~adj] computes a maximum matching of the
    bipartite graph with left vertices [0..left-1], right vertices
    [0..right-1] and edges [u -> adj u]. *)

val size : t -> int
val pair_of_left : t -> int -> int option
val pair_of_right : t -> int -> int option
