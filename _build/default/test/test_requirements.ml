(* Tests for Fsa_requirements: derivation, classification, generalisation.
   The expected values are the published results of the paper's Sect. 4. *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Auth = Fsa_requirements.Auth
module Derive = Fsa_requirements.Derive
module Classify = Fsa_requirements.Classify
module Generalise = Fsa_requirements.Generalise
module S = Fsa_vanet.Scenario

let auth = Alcotest.testable Auth.pp Auth.equal
let req s =
  match String.split_on_char '|' s with
  | [ cause; effect; stakeholder ] ->
    Auth.make ~cause:(Action.of_string_exn cause)
      ~effect:(Action.of_string_exn effect)
      ~stakeholder:(Agent.of_string stakeholder)
  | _ -> invalid_arg "req"

let w = Agent.Symbolic "w"

let test_fig2_requirements () =
  (* Example 2: the RSU instance yields exactly the two requirements *)
  let reqs = Derive.of_sos S.rsu_and_vehicle in
  Alcotest.(check (list auth)) "Example 2"
    [ req "pos(GPS_w, pos)|show(HMI_w, warn)|D_w";
      req "send(cam(pos))|show(HMI_w, warn)|D_w" ]
    reqs

let test_fig3_requirements () =
  (* chi_1: requirements (1)-(3) *)
  let reqs = Derive.of_sos S.two_vehicles in
  Alcotest.(check (list auth)) "chi_1"
    [ req "pos(GPS_1, pos)|show(HMI_w, warn)|D_w";
      req "pos(GPS_w, pos)|show(HMI_w, warn)|D_w";
      req "sense(ESP_1, sW)|show(HMI_w, warn)|D_w" ]
    reqs

let test_fig4_requirements () =
  (* chi_2 = chi_1 + pos(GPS_2) *)
  let reqs2 = Derive.of_sos S.two_vehicles in
  let reqs3 = Derive.of_sos S.three_vehicles in
  Alcotest.(check (list auth)) "chi_2 adds the forwarder's position"
    [ req "pos(GPS_2, pos)|show(HMI_w, warn)|D_w" ]
    (Auth.diff reqs3 reqs2);
  Alcotest.(check bool) "chi_1 subset of chi_2" true (Auth.subset reqs2 reqs3)

let test_chain_family () =
  (* chi_i = chi_(i-1) + pos(GPS_i): each new forwarder adds exactly one
     requirement *)
  let sizes = List.map (fun n -> List.length (Derive.of_sos (S.chain n))) [ 2; 3; 4; 5; 6 ] in
  Alcotest.(check (list int)) "requirement counts" [ 3; 4; 5; 6; 7 ] sizes

let test_for_effect () =
  let reqs = Derive.for_effect S.two_vehicles (S.show w) in
  Alcotest.(check int) "all requirements concern show" 3 (List.length reqs);
  let none = Derive.for_effect S.two_vehicles (S.sense (Agent.Concrete 1)) in
  Alcotest.(check int) "sense is not an output" 0 (List.length none)

let test_of_instances_union () =
  let union = Derive.of_instances [ S.chain 2; S.chain 3; S.chain 4 ] in
  Alcotest.(check int) "union size" 5 (List.length union);
  Alcotest.(check bool) "contains largest instance's set" true
    (Auth.subset (Derive.of_sos (S.chain 4)) union)

let test_default_stakeholder () =
  Alcotest.(check string) "HMI maps to driver" "D_w"
    (Agent.to_string (Derive.default_stakeholder (S.show w)));
  Alcotest.(check string) "other actors keep themselves" "ESP_1"
    (Agent.to_string (Derive.default_stakeholder (S.sense (Agent.Concrete 1))));
  Alcotest.(check string) "actor-less maps to ENV" "ENV"
    (Agent.to_string (Derive.default_stakeholder S.rsu_send))

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let test_classification_fig4 () =
  let sos = S.three_vehicles in
  let reqs = Derive.of_sos sos in
  let forwarder_pos = req "pos(GPS_2, pos)|show(HMI_w, warn)|D_w" in
  List.iter
    (fun r ->
      let expected =
        if Auth.equal r forwarder_pos then
          Classify.Policy_induced [ S.forwarding_policy ]
        else Classify.Safety_critical
      in
      Alcotest.(check bool)
        (Fmt.str "class of %a" Auth.pp r)
        true
        (Classify.equal_class expected (Classify.classify sos r)))
    reqs

let test_safety_critical_filter () =
  let sos = S.chain 4 in
  let reqs = Derive.of_sos sos in
  let safety = Classify.safety_critical sos reqs in
  (* requirements (1)-(3) survive; the two forwarder positions do not *)
  Alcotest.(check int) "safety count" 3 (List.length safety);
  Alcotest.(check int) "policy count" 2 (List.length reqs - List.length safety)

let test_policies_of () =
  Alcotest.(check (list string)) "policy inventory"
    [ S.forwarding_policy ]
    (Classify.policies_of S.three_vehicles);
  Alcotest.(check (list string)) "no policies in fig3" []
    (Classify.policies_of S.two_vehicles)

(* ------------------------------------------------------------------ *)
(* Generalisation                                                      *)
(* ------------------------------------------------------------------ *)

let gen = Alcotest.testable Generalise.pp Generalise.equal

let test_generalise_paper () =
  (* the paper's requirements (1)-(4) from the union over chain(2..5) *)
  let union = Derive.of_instances (List.map S.chain [ 2; 3; 4; 5 ]) in
  let gens = Generalise.generalise ~domain_of:S.v_forward_domain union in
  Alcotest.(check (list gen)) "requirements (1)-(4)"
    [ Generalise.Concrete (req "pos(GPS_1, pos)|show(HMI_w, warn)|D_w");
      Generalise.Concrete (req "pos(GPS_w, pos)|show(HMI_w, warn)|D_w");
      Generalise.Concrete (req "sense(ESP_1, sW)|show(HMI_w, warn)|D_w");
      Generalise.Forall
        { var = "x"; domain = "V_forward";
          schema = req "pos(GPS_x, pos)|show(HMI_w, warn)|D_w" } ]
    gens

let test_generalise_min_family () =
  (* a single forwarder is below the default family threshold *)
  let union = Derive.of_sos (S.chain 3) in
  let gens = Generalise.generalise ~domain_of:S.v_forward_domain union in
  Alcotest.(check bool) "no quantifier for a single member" true
    (List.for_all (function Generalise.Concrete _ -> true | Generalise.Forall _ -> false) gens);
  let forced =
    Generalise.generalise ~min_family:1 ~domain_of:S.v_forward_domain union
  in
  Alcotest.(check bool) "min_family 1 quantifies" true
    (List.exists (function Generalise.Forall _ -> true | Generalise.Concrete _ -> false) forced)

let test_generalise_expand_roundtrip () =
  let union = Derive.of_instances (List.map S.chain [ 2; 3; 4; 5 ]) in
  let gens = Generalise.generalise ~domain_of:S.v_forward_domain union in
  let expanded =
    Generalise.expand_all
      ~domain_members:(fun _ -> S.forwarders_of_chain 5)
      gens
  in
  Alcotest.(check bool) "expansion recovers the union" true
    (Auth.equal_set union expanded)

(* ------------------------------------------------------------------ *)
(* Requirement set operations                                          *)
(* ------------------------------------------------------------------ *)

let test_set_ops () =
  let r1 = req "a|b|P" and r2 = req "c|d|Q" in
  Alcotest.(check int) "normalise dedups" 2
    (List.length (Auth.normalise [ r1; r2; r1 ]));
  Alcotest.(check bool) "union" true
    (Auth.equal_set (Auth.union [ r1 ] [ r2 ]) [ r1; r2 ]);
  Alcotest.(check (list auth)) "diff" [ r2 ] (Auth.diff [ r1; r2 ] [ r1 ]);
  Alcotest.(check bool) "subset" true (Auth.subset [ r1 ] [ r1; r2 ]);
  Alcotest.(check bool) "not subset" false (Auth.subset [ r1; r2 ] [ r1 ])

let test_prose () =
  let r = req "sense(ESP_1, sW)|show(HMI_w, warn)|D_w" in
  let prose = Fmt.str "%a" Auth.pp_prose r in
  Alcotest.(check bool) "mentions stakeholder" true
    (let sub = "D_w" in
     let rec contains i =
       i + String.length sub <= String.length prose
       && (String.sub prose i (String.length sub) = sub || contains (i + 1))
     in
     contains 0)

let suite =
  [ Alcotest.test_case "Fig. 2 requirements (Example 2)" `Quick test_fig2_requirements;
    Alcotest.test_case "Fig. 3 requirements (chi_1)" `Quick test_fig3_requirements;
    Alcotest.test_case "Fig. 4 requirements (chi_2)" `Quick test_fig4_requirements;
    Alcotest.test_case "chain family growth" `Quick test_chain_family;
    Alcotest.test_case "for_effect" `Quick test_for_effect;
    Alcotest.test_case "union over instances" `Quick test_of_instances_union;
    Alcotest.test_case "default stakeholder" `Quick test_default_stakeholder;
    Alcotest.test_case "classification (Sect. 4.4)" `Quick test_classification_fig4;
    Alcotest.test_case "safety-critical filter" `Quick test_safety_critical_filter;
    Alcotest.test_case "policy inventory" `Quick test_policies_of;
    Alcotest.test_case "generalisation (reqs (1)-(4))" `Quick test_generalise_paper;
    Alcotest.test_case "generalisation threshold" `Quick test_generalise_min_family;
    Alcotest.test_case "generalise/expand roundtrip" `Quick test_generalise_expand_roundtrip;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "prose rendering" `Quick test_prose ]
