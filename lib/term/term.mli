(** First-order data terms.

    Terms represent the information items flowing through a system of
    systems: sensor readings ([sW]), positions ([pos1]), messages
    ([cam(pos1)]), warnings ([warn(pos1)]).  Variables occur in rule
    patterns and in generalised (first-order) requirements. *)

module String_map : Map.S with type key = string
module String_set : Set.S with type elt = string

type t =
  | Sym of string  (** atomic symbol, e.g. [sW] *)
  | Int of int  (** integer literal, e.g. a position coordinate *)
  | Var of string  (** variable, printed [?x] *)
  | App of string * t list  (** compound term, e.g. [cam(pos1)] *)

val compare : t -> t -> int
val compare_list : t list -> t list -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string

val sym : string -> t
val int : int -> t
val var : string -> t

val app : string -> t list -> t
(** [app f args] is [App (f, args)], collapsed to [Sym f] when [args = []]. *)

val hash : t -> int
(** A structural hash consistent with {!equal}. *)

val intern : t -> t
(** Hash-consing: a canonical, physically-shared representative of the
    term (subterms included), equal to the argument.  Interned terms make
    the physical-equality fast paths of {!equal} and {!compare} fire, so
    the state-space exploration hot path compares pointers instead of
    walking structures.  Pools are per-domain; cross-domain physical
    sharing is not guaranteed (and not required for correctness). *)

val vars : t -> String_set.t
val is_ground : t -> bool
val size : t -> int

val map_vars : (string -> t option) -> t -> t
(** [map_vars f t] replaces each variable [v] by [f v] when defined. *)

val rename : string -> t -> t
(** [rename prefix t] prefixes every variable name, for freshness. *)

(** Substitutions: finite maps from variable names to terms. *)
module Subst : sig
  type term = t
  type t

  val empty : t
  val is_empty : t -> bool
  val singleton : string -> term -> t

  val add : string -> term -> t -> t option
  (** [add v t s] extends [s]; [None] if [v] is already bound to a
      different term. *)

  val find : string -> t -> term option
  val bindings : t -> (string * term) list
  val apply : t -> term -> term

  val merge : t -> t -> t option
  (** Union of two substitutions; [None] on a conflicting binding. *)

  val pp : t Fmt.t
end

val match_ : pattern:t -> target:t -> Subst.t option
(** One-way matching: a substitution [s] with [Subst.apply s pattern =
    target], if one exists. *)

val unify : t -> t -> Subst.t option
(** Syntactic unification with occurs-check. *)

val parse_term : Lexer.t -> t
(** Parse a term from an ongoing token stream.
    @raise Lexer.Error on malformed input. *)

val of_string : string -> (t, string) result
val of_string_exn : string -> t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
