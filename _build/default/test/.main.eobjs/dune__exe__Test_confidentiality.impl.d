test/test_confidentiality.ml: Alcotest Fmt Fsa_requirements Fsa_term Fsa_vanet List Printf String
