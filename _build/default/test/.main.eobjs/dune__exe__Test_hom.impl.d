test/test_hom.ml: Alcotest Fmt Fsa_apa Fsa_automata Fsa_hom Fsa_lts Fsa_term Fsa_vanet Lazy List String
