lib/refine/threat.ml: Fmt Fsa_graph Fsa_model Fsa_requirements Fsa_term List Printf Refine String
