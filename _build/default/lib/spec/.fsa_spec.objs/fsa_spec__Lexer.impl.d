lib/spec/lexer.ml: Buffer Loc String Token
