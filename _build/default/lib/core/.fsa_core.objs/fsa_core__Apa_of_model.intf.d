lib/core/apa_of_model.mli: Analysis Fsa_apa Fsa_model Fsa_term
