(* Tests for Fsa_obs: the metrics registry, spans and progress
   reporting.  Timing-sensitive assertions use an injected deterministic
   clock so the expected output is stable. *)

module Metrics = Fsa_obs.Metrics
module Span = Fsa_obs.Span
module Progress = Fsa_obs.Progress
module Lts = Fsa_lts.Lts
module V = Fsa_vanet.Vehicle_apa

(* The registry and span buffer are process-wide; every test starts from
   a clean slate and leaves observability switched off. *)
let with_obs f () =
  Metrics.reset ();
  Span.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Span.use_default_clock ();
      Span.reset ();
      Metrics.reset ())
    f

(* A fake clock advancing 1000 ns per reading. *)
let install_fake_clock () =
  let t = ref 0L in
  Span.set_clock (fun () ->
      t := Int64.add !t 1000L;
      !t)

let test_counter_arithmetic () =
  let c = Metrics.counter "obs_test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "1 + 41" 42 (Metrics.counter_value c);
  let c' = Metrics.counter "obs_test.counter" in
  Metrics.incr c';
  Alcotest.(check int) "same name, same instrument" 43
    (Metrics.counter_value c);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument
       "Metrics: obs_test.counter is already registered with a different kind")
    (fun () -> ignore (Metrics.gauge "obs_test.counter"))

let test_gauge () =
  let g = Metrics.gauge "obs_test.gauge" in
  Metrics.set_gauge g 3.5;
  Alcotest.(check (float 0.)) "set" 3.5 (Metrics.gauge_value g);
  Metrics.set_gauge_max g 2.0;
  Alcotest.(check (float 0.)) "max keeps larger" 3.5 (Metrics.gauge_value g);
  Metrics.set_gauge_max g 7.25;
  Alcotest.(check (float 0.)) "max raises" 7.25 (Metrics.gauge_value g)

let test_histogram_buckets () =
  let h = Metrics.histogram ~buckets:[| 1.; 2.; 5. |] "obs_test.histogram" in
  List.iter (Metrics.observe h) [ 0.; 1.; 1.5; 2.; 5.; 5.1; 100. ];
  (* le convention: a value lands in the first bucket whose bound >= it *)
  Alcotest.(check (array int)) "bucket counts" [| 2; 2; 1; 2 |]
    (Metrics.histogram_counts h);
  Alcotest.(check int) "count" 7 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 114.6 (Metrics.histogram_sum h)

let test_disabled_records_nothing () =
  Metrics.set_enabled false;
  let c = Metrics.counter "obs_test.counter" in
  let g = Metrics.gauge "obs_test.gauge" in
  let h = Metrics.histogram ~buckets:[| 1.; 2.; 5. |] "obs_test.histogram" in
  Metrics.incr ~by:10 c;
  Metrics.set_gauge g 1.0;
  Metrics.set_gauge_max g 2.0;
  Metrics.observe h 1.0;
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "gauge untouched" 0. (Metrics.gauge_value g);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.histogram_count h);
  install_fake_clock ();
  let r = Span.with_ "disabled.span" (fun () -> 7) in
  Alcotest.(check int) "with_ is transparent" 7 r;
  Alcotest.(check int) "no span recorded" 0 (List.length (Span.events ()));
  Metrics.set_enabled true

let test_span_nesting () =
  install_fake_clock ();
  let r =
    Span.with_ "outer" (fun () ->
        Span.with_ ~cat:"inner-cat" "inner" (fun () -> ());
        Span.with_ ~cat:"inner-cat" "inner2" (fun () -> ());
        "result")
  in
  Alcotest.(check string) "with_ returns the body's value" "result" r;
  match Span.events () with
  | [ outer; inner; inner2 ] ->
    Alcotest.(check string) "outer first" "outer" outer.Span.ev_name;
    Alcotest.(check string) "then inner" "inner" inner.Span.ev_name;
    Alcotest.(check string) "then inner2" "inner2" inner2.Span.ev_name;
    Alcotest.(check int) "outer depth" 0 outer.Span.ev_depth;
    Alcotest.(check int) "inner depth" 1 inner.Span.ev_depth;
    Alcotest.(check string) "category kept" "inner-cat" inner.Span.ev_cat;
    (* clock readings: outer start 1000, inner 2000..3000,
       inner2 4000..5000, outer stop 6000 *)
    Alcotest.(check int64) "inner duration" 1000L inner.Span.ev_dur_ns;
    Alcotest.(check int64) "outer duration" 5000L outer.Span.ev_dur_ns;
    Alcotest.(check bool) "chronological order" true
      (Int64.compare inner.Span.ev_start_ns inner2.Span.ev_start_ns < 0)
  | evs -> Alcotest.failf "expected 3 spans, got %d" (List.length evs)

let test_span_survives_exceptions () =
  install_fake_clock ();
  (try Span.with_ "raising" (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length (Span.events ()))

let test_chrome_json_deterministic () =
  install_fake_clock ();
  Span.with_ "outer" (fun () -> Span.with_ "inner" (fun () -> ()));
  let expected =
    "[\n\
     {\"name\":\"outer\",\"cat\":\"fsa\",\"ph\":\"X\",\"ts\":1.000,\"dur\":3.000,\"pid\":0,\"tid\":1,\"args\":{\"depth\":0}},\n\
     {\"name\":\"inner\",\"cat\":\"fsa\",\"ph\":\"X\",\"ts\":2.000,\"dur\":1.000,\"pid\":0,\"tid\":1,\"args\":{\"depth\":1}}\n\
     ]\n"
  in
  Alcotest.(check string) "stable trace output" expected
    (Span.to_chrome_json ());
  Alcotest.(check string) "export does not consume" expected
    (Span.to_chrome_json ())

let test_metrics_json_deterministic () =
  Metrics.incr ~by:3 (Metrics.counter "obs_test.zz_b");
  Metrics.incr ~by:1 (Metrics.counter "obs_test.zz_a");
  let json = Metrics.to_json () in
  Alcotest.(check string) "dump is stable" json (Metrics.to_json ());
  let index sub =
    let rec go i =
      if i + String.length sub > String.length json then
        Alcotest.failf "%s not found in dump" sub
      else if String.sub json i (String.length sub) = sub then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "keys sorted by name" true
    (index "\"obs_test.zz_a\": 1" < index "\"obs_test.zz_b\": 3")

let test_progress_throttling () =
  install_fake_clock ();
  let fired = ref [] in
  let p =
    Progress.create ~every_n:2 ~every_ns:Int64.max_int (fun u ->
        fired := (u.Progress.u_count, u.Progress.u_final) :: !fired)
  in
  for count = 1 to 6 do
    Progress.tick p ~count ~frontier:count
  done;
  Progress.finish p ~count:6;
  Alcotest.(check (list (pair int bool)))
    "fires every 2 items, then a final report"
    [ (2, false); (4, false); (6, false); (6, true) ]
    (List.rev !fired)

let test_progress_silent_run () =
  install_fake_clock ();
  let fired = ref 0 in
  let p =
    Progress.create ~every_n:1_000_000 ~every_ns:Int64.max_int (fun _ ->
        incr fired)
  in
  for count = 1 to 100 do
    Progress.tick p ~count ~frontier:0
  done;
  Progress.finish p ~count:100;
  Alcotest.(check int) "below both thresholds: fully silent" 0 !fired

let test_explore_instrumented () =
  let ticks = ref [] in
  let progress =
    Progress.create ~every_n:1 ~every_ns:Int64.max_int (fun u ->
        if not u.Progress.u_final then ticks := u.Progress.u_count :: !ticks)
  in
  let lts = Lts.explore ~progress (V.two_vehicles ()) in
  Alcotest.(check int) "13 states explored" 13 (Lts.nb_states lts);
  Alcotest.(check int) "progress saw the full count" 13
    (List.fold_left max 0 !ticks);
  Alcotest.(check int) "lts.states_explored" 13
    (Metrics.counter_value (Metrics.counter "lts.states_explored"));
  Alcotest.(check bool) "apa.rules_tried nonzero" true
    (Metrics.counter_value (Metrics.counter "apa.rules_tried") > 0);
  Alcotest.(check bool) "lts.explore span recorded" true
    (List.exists
       (fun e -> e.Span.ev_name = "lts.explore")
       (Span.events ()))

let suite =
  [ Alcotest.test_case "counter arithmetic" `Quick (with_obs test_counter_arithmetic);
    Alcotest.test_case "gauge set and max" `Quick (with_obs test_gauge);
    Alcotest.test_case "histogram bucket boundaries" `Quick
      (with_obs test_histogram_buckets);
    Alcotest.test_case "disabled registry records nothing" `Quick
      (with_obs test_disabled_records_nothing);
    Alcotest.test_case "span nesting and ordering" `Quick
      (with_obs test_span_nesting);
    Alcotest.test_case "span survives exceptions" `Quick
      (with_obs test_span_survives_exceptions);
    Alcotest.test_case "chrome trace JSON deterministic" `Quick
      (with_obs test_chrome_json_deterministic);
    Alcotest.test_case "metrics JSON deterministic and sorted" `Quick
      (with_obs test_metrics_json_deterministic);
    Alcotest.test_case "progress throttling" `Quick
      (with_obs test_progress_throttling);
    Alcotest.test_case "progress silent below thresholds" `Quick
      (with_obs test_progress_silent_run);
    Alcotest.test_case "explore records metrics, spans and progress" `Quick
      (with_obs test_explore_instrumented) ]
