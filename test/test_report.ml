(* Tests for spec check declarations, the Markdown report generator and
   the Fsa_report requirements-report subsystem (stable SR-* ids,
   golden cross-configuration bodies, coverage identities). *)

module Parser = Fsa_spec.Parser
module Elaborate = Fsa_spec.Elaborate
module Ast = Fsa_spec.Ast
module Pattern = Fsa_mc.Pattern
module Lts = Fsa_lts.Lts
module Report = Fsa_core.Report
module R = Fsa_report.Report
module Analysis = Fsa_core.Analysis
module Sym = Fsa_sym.Sym
module Apa = Fsa_apa.Apa
module Classify = Fsa_requirements.Classify
module S = Fsa_vanet.Scenario
module Evita = Fsa_vanet.Evita

let contains s sub =
  let rec go i =
    i + String.length sub <= String.length s
    && (String.sub s i (String.length sub) = sub || go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Check declarations                                                  *)
(* ------------------------------------------------------------------ *)

let test_parse_checks () =
  let decls =
    Parser.parse_string
      {|
      check precedence V1_sense V2_show
      check absence V2_rec before V1_send
      check existence V2_show after V1_send
      check universality V1_pos globally
      |}
  in
  Alcotest.(check int) "four declarations" 4 (List.length decls);
  match decls with
  | [ Ast.D_check c1; Ast.D_check c2; Ast.D_check c3; Ast.D_check c4 ] ->
    Alcotest.(check string) "kind" "precedence" c1.Ast.ck_kind;
    Alcotest.(check (list string)) "args" [ "V1_sense"; "V2_show" ] c1.Ast.ck_args;
    Alcotest.(check (option (pair string string))) "before scope"
      (Some ("before", "V1_send"))
      c2.Ast.ck_scope;
    Alcotest.(check (option (pair string string))) "after scope"
      (Some ("after", "V1_send"))
      c3.Ast.ck_scope;
    Alcotest.(check (option (pair string string))) "globally is default" None
      c4.Ast.ck_scope
  | _ -> Alcotest.fail "check declarations expected"

let test_parse_check_errors () =
  let fails input =
    match Parser.parse_string input with
    | _ -> false
    | exception Fsa_spec.Loc.Error _ -> true
  in
  Alcotest.(check bool) "unknown kind" true (fails "check frobnicate X");
  Alcotest.(check bool) "missing argument" true (fails "check precedence X")

let spec_with_checks =
  {|
  component Vehicle {
    state esp = { }
    state gps = { }
    state bus = { }
    state hmi = { }
    shared net
    action sense: take esp(_x) -> put bus(_x)
    action pos:   take gps(_p) -> put bus(_p)
    action send:  take bus(sW), take bus(_p) when position(_p)
                  -> put net(cam(self, _p))
    action rec:   take net(cam(_v, _p)) when _v != self -> put bus(warn(_p))
    action show:  take bus(warn(_p)), take bus(_q)
                  when position(_q) && near(_p, _q) -> put hmi(warn)
  }
  instance V1 = Vehicle(1) { esp = { sW }, gps = { pos1 } }
  instance V2 = Vehicle(2) { gps = { pos2 } }

  check precedence V1_sense V2_show
  check existence V2_show
  check absence V1_show
  check precedence V2_show V1_sense
  |}

let test_elaborate_and_evaluate_checks () =
  let spec = Parser.parse_string spec_with_checks in
  let patterns = Elaborate.patterns_of_spec spec in
  Alcotest.(check int) "four patterns" 4 (List.length patterns);
  let lts = Lts.explore (Elaborate.apa_of_spec spec) in
  let results =
    List.map (fun (d, p) -> (d, (Pattern.check lts p).Pattern.holds_)) patterns
  in
  Alcotest.(check (list (pair string bool))) "verdicts"
    [ ("check precedence V1_sense V2_show", true);
      ("check existence V2_show", true);
      ("check absence V1_show", true);
      ("check precedence V2_show V1_sense", false) ]
    results

let test_shipped_spec_checks_hold () =
  let dir =
    List.find_opt Sys.file_exists
      [ "examples/specs"; "../../../examples/specs" ]
  in
  match dir with
  | None -> ()
  | Some dir ->
    List.iter
      (fun file ->
        let spec = Parser.parse_file (Filename.concat dir file) in
        let patterns = Elaborate.patterns_of_spec spec in
        Alcotest.(check bool) (file ^ " ships checks") true (patterns <> []);
        let lts = Lts.explore (Elaborate.apa_of_spec spec) in
        List.iter
          (fun (d, p) ->
            Alcotest.(check bool) (file ^ ": " ^ d) true
              (Pattern.check lts p).Pattern.holds_)
          patterns)
      [ "two_vehicles.fsa"; "smart_grid.fsa"; "platoon.fsa" ]

(* ------------------------------------------------------------------ *)
(* Pretty-printer round trips                                          *)
(* ------------------------------------------------------------------ *)

let test_pretty_roundtrip_inline () =
  let spec = Parser.parse_string spec_with_checks in
  let printed = Fsa_spec.Pretty.to_string spec in
  let reparsed = Parser.parse_string printed in
  Alcotest.(check bool) "AST round trip" true (Fsa_spec.Pretty.equal spec reparsed)

let test_pretty_roundtrip_files () =
  let dir =
    List.find_opt Sys.file_exists
      [ "examples/specs"; "../../../examples/specs" ]
  in
  match dir with
  | None -> ()
  | Some dir ->
    List.iter
      (fun file ->
        let spec = Parser.parse_file (Filename.concat dir file) in
        let reparsed = Parser.parse_string (Fsa_spec.Pretty.to_string spec) in
        Alcotest.(check bool) (file ^ " round trips") true
          (Fsa_spec.Pretty.equal spec reparsed))
      [ "two_vehicles.fsa"; "four_vehicles.fsa"; "evita_onboard.fsa";
        "smart_grid.fsa"; "platoon.fsa" ]

let test_pretty_preserves_behaviour () =
  let spec = Parser.parse_string spec_with_checks in
  let reparsed = Parser.parse_string (Fsa_spec.Pretty.to_string spec) in
  let states ast = Lts.nb_states (Lts.explore (Elaborate.apa_of_spec ast)) in
  Alcotest.(check int) "same state space" (states spec) (states reparsed)

(* ------------------------------------------------------------------ *)
(* Report generation                                                   *)
(* ------------------------------------------------------------------ *)

let test_report_two_vehicles () =
  let md = Report.markdown S.three_vehicles in
  Alcotest.(check bool) "title" true
    (contains md "# Functional security analysis: three_vehicles");
  Alcotest.(check bool) "inputs section" true (contains md "System inputs");
  Alcotest.(check bool) "requirements table" true (contains md "| # | Cause |");
  Alcotest.(check bool) "policy note" true
    (contains md "position-based-forwarding");
  Alcotest.(check bool) "availability count" true
    (contains md "1 requirement(s) exist only because");
  Alcotest.(check bool) "confidentiality table" true
    (contains md "Inferred level");
  Alcotest.(check bool) "refinement table" true (contains md "Min. cut");
  Alcotest.(check bool) "prioritised work list" true
    (contains md "Prioritised work list")

let test_report_options () =
  let options =
    { Report.default_options with
      Report.with_confidentiality = false;
      with_refinement = false }
  in
  let md = Report.markdown ~options S.two_vehicles in
  Alcotest.(check bool) "no confidentiality section" false
    (contains md "Inferred level");
  Alcotest.(check bool) "no refinement section" false (contains md "Min. cut");
  Alcotest.(check bool) "requirements still present" true
    (contains md "| # | Cause |")

let test_report_evita () =
  let options = { Report.default_options with Report.stakeholder = Evita.stakeholder } in
  let md = Report.markdown ~options Evita.model in
  Alcotest.(check bool) "mentions all 29" true
    (contains md "Authenticity requirements (29)");
  Alcotest.(check bool) "driver stakeholder used" true (contains md "Driver")

(* ------------------------------------------------------------------ *)
(* Fsa_report: requirement reports                                     *)
(* ------------------------------------------------------------------ *)

let test_pp_class_unattributed () =
  Alcotest.(check string) "empty policy list renders explicitly"
    "policy-induced (unattributed)"
    (Fmt.str "%a" Classify.pp_class (Classify.Policy_induced []));
  let s =
    Fmt.str "%a" Classify.pp_class (Classify.Policy_induced [ "p1"; "p2" ])
  in
  Alcotest.(check bool) "attributed list names its policies" true
    (contains s "policy-induced (availability): p1" && contains s "p2")

(* Build a tool-path report the way the server does, parameterised by
   engine and reduction. *)
let build_report ?reduce ?(shared = true) spec =
  let apa = Elaborate.apa_of_spec spec in
  let sigs = Elaborate.guard_signatures spec in
  let plan =
    Option.map
      (fun k -> Sym.plan ~guard_sig:(fun r -> List.assoc_opt r sigs) k apa)
      reduce
  in
  let tr =
    Analysis.tool ?reduce:plan ~shared
      ~stakeholder:Fsa_vanet.Vehicle_apa.stakeholder apa
  in
  let rpt =
    R.of_tool
      ~origins:(R.origins_of_skeleton (Elaborate.skeleton_of_spec spec))
      ~soses:(Elaborate.sos_list spec)
      ~alphabet:(Apa.rule_names apa)
      ~digest:(Elaborate.digest_of_spec ~parts:[ `Apa; `Models ] spec)
      ~settings:
        { R.sg_path = "tool";
          sg_method = "abstract";
          sg_engine = (if shared then "shared-v1" else "per-pair");
          sg_reduce =
            (match reduce with
            | None -> "none"
            | Some k -> Sym.kind_to_string k);
          sg_prune = "none";
          sg_max_states = 1_000_000 }
      tr
  in
  (tr, rpt)

let example_specs () =
  match Test_check.spec_dir () with
  | None -> []
  | Some dir ->
    List.filter_map
      (fun path ->
        match Parser.parse_file path with
        | exception _ -> None
        | spec -> (
          match Elaborate.apa_of_spec spec with
          | exception (Fsa_spec.Loc.Error _ | Invalid_argument _) -> None
          | _ -> Some (Filename.basename path, spec)))
      (Test_check.example_files dir)

(* The report body (ids, digests, classes, scores, ranks, verification
   tags, endpoints, action traceability) is invariant across the
   abstraction engine and every reduction kind: golden byte-for-byte on
   both emitters.  Settings/pair-statistics blocks legitimately differ,
   which is exactly what [~body_only] excludes. *)
let test_golden_across_configs () =
  let specs = example_specs () in
  Alcotest.(check bool) "at least one example spec" true (specs <> []);
  List.iter
    (fun (name, spec) ->
      let _, base = build_report spec in
      let base_json = R.to_json_string ~body_only:true base in
      let base_md = R.to_markdown ~body_only:true base in
      List.iter
        (fun (reduce, shared) ->
          let _, rpt = build_report ?reduce ~shared spec in
          let label =
            Printf.sprintf "%s/--reduce %s/%s" name
              (match reduce with
              | None -> "none"
              | Some k -> Sym.kind_to_string k)
              (if shared then "shared" else "legacy")
          in
          Alcotest.(check string)
            (label ^ ": JSON body golden") base_json
            (R.to_json_string ~body_only:true rpt);
          Alcotest.(check string)
            (label ^ ": Markdown body golden") base_md
            (R.to_markdown ~body_only:true rpt);
          let ranks = List.map (fun it -> it.R.it_rank) rpt.R.r_items in
          Alcotest.(check (list int))
            (label ^ ": ranks are a permutation of 1..n")
            (List.init (List.length ranks) (fun i -> i + 1))
            (List.sort compare ranks))
        [ (None, false);
          (Some Sym.Sym, true);
          (Some Sym.Sym, false);
          (Some Sym.Sym_por, true);
          (Some Sym.Sym_por, false) ])
    specs

(* Two from-scratch runs over the same spec must agree byte-for-byte on
   the *full* report, run-dependent blocks included. *)
let test_full_report_deterministic () =
  List.iter
    (fun (name, spec) ->
      let _, a = build_report spec in
      let _, b = build_report spec in
      Alcotest.(check string) (name ^ ": full JSON deterministic")
        (R.to_json_string a) (R.to_json_string b);
      Alcotest.(check string) (name ^ ": full Markdown deterministic")
        (R.to_markdown a) (R.to_markdown b))
    (List.filter
       (fun (n, _) -> n = "two_vehicles.fsa" || n = "smart_grid.fsa")
       (example_specs ()))

let ids_and_digests rpt =
  List.map (fun it -> (it.R.it_id, it.R.it_digest)) rpt.R.r_items

(* SR ids survive reformatting (pretty-print round trip) and
   declaration permutation: identity is content-derived, not
   positional. *)
let test_id_stability () =
  let spec = Parser.parse_string Test_store.spec_text in
  let _, base = build_report spec in
  Alcotest.(check bool) "spec derives requirements" true
    (base.R.r_items <> []);
  let reformatted = Parser.parse_string (Fsa_spec.Pretty.to_string spec) in
  let _, r1 = build_report reformatted in
  Alcotest.(check (list (pair string string)))
    "ids stable under reformatting" (ids_and_digests base)
    (ids_and_digests r1);
  let permuted = Parser.parse_string Test_store.spec_text_permuted in
  let _, r2 = build_report permuted in
  Alcotest.(check (list (pair string string)))
    "ids stable under declaration permutation" (ids_and_digests base)
    (ids_and_digests r2);
  Alcotest.(check string) "model digest stable too" base.R.r_digest
    r2.R.r_digest

(* covered + uncovered = total, tested + pruned = total, dependent +
   independent = total, and tested must reconcile with the analysis's
   own non-pruned pair rows (what the server surfaces as
   timings.pair_quantiles). *)
let check_coverage_identities label (tr, rpt) =
  let cov = rpt.R.r_coverage in
  Alcotest.(check int) (label ^ ": covered + uncovered = total")
    cov.R.cv_actions_total
    (cov.R.cv_actions_covered + List.length cov.R.cv_actions_uncovered);
  let p = cov.R.cv_pairs in
  Alcotest.(check int) (label ^ ": tested + pruned = total") p.R.pc_total
    (p.R.pc_tested + p.R.pc_pruned);
  Alcotest.(check int) (label ^ ": dependent + independent = total")
    p.R.pc_total
    (p.R.pc_dependent + p.R.pc_independent);
  let tested_rows =
    List.length
      (List.filter
         (fun t -> not t.Analysis.pt_pruned)
         tr.Analysis.t_timings.Analysis.ph_pairs)
  in
  Alcotest.(check int)
    (label ^ ": tested matches the analysis pair rows")
    tested_rows p.R.pc_tested;
  Alcotest.(check int)
    (label ^ ": every requirement is a dependent pair")
    (List.length rpt.R.r_items)
    p.R.pc_dependent

let test_coverage_identities () =
  List.iter
    (fun (name, spec) ->
      check_coverage_identities name (build_report spec))
    (List.filter
       (fun (n, _) -> n = "two_vehicles.fsa" || n = "four_vehicles.fsa")
       (example_specs ()))

(* The manual path: degenerate pair coverage, endpoints resolved through
   the sos components, sequential ids. *)
let test_manual_report () =
  let sos = S.two_vehicles in
  let mr = Analysis.manual sos in
  let rpt = R.of_manual ~digest:"testdigest" sos mr in
  Alcotest.(check (list string)) "sequential ids"
    (List.mapi (fun i _ -> Printf.sprintf "SR-%04d" (i + 1)) rpt.R.r_items)
    (List.map (fun it -> it.R.it_id) rpt.R.r_items);
  let p = rpt.R.r_coverage.R.cv_pairs in
  Alcotest.(check int) "tested = total" p.R.pc_total p.R.pc_tested;
  Alcotest.(check int) "dependent = total" p.R.pc_total p.R.pc_dependent;
  Alcotest.(check int) "nothing pruned" 0 p.R.pc_pruned;
  Alcotest.(check int) "nothing independent" 0 p.R.pc_independent;
  List.iter
    (fun it ->
      Alcotest.(check bool)
        (it.R.it_id ^ ": endpoints attributed to components") true
        (it.R.it_cause.R.ep_instance <> None
        && it.R.it_effect.R.ep_instance <> None))
    rpt.R.r_items;
  Alcotest.(check string) "deterministic emission"
    (R.to_json_string rpt)
    (R.to_json_string (R.of_manual ~digest:"testdigest" sos mr))

let suite =
  [ Alcotest.test_case "parse checks" `Quick test_parse_checks;
    Alcotest.test_case "check parse errors" `Quick test_parse_check_errors;
    Alcotest.test_case "elaborate and evaluate" `Quick test_elaborate_and_evaluate_checks;
    Alcotest.test_case "shipped spec checks hold" `Quick test_shipped_spec_checks_hold;
    Alcotest.test_case "pretty round trip (inline)" `Quick test_pretty_roundtrip_inline;
    Alcotest.test_case "pretty round trip (files)" `Quick test_pretty_roundtrip_files;
    Alcotest.test_case "pretty preserves behaviour" `Quick test_pretty_preserves_behaviour;
    Alcotest.test_case "report content" `Quick test_report_two_vehicles;
    Alcotest.test_case "report options" `Quick test_report_options;
    Alcotest.test_case "report on EVITA" `Quick test_report_evita;
    Alcotest.test_case "pp_class unattributed" `Quick
      test_pp_class_unattributed;
    Alcotest.test_case "golden bodies across configs" `Quick
      test_golden_across_configs;
    Alcotest.test_case "full report deterministic" `Quick
      test_full_report_deterministic;
    Alcotest.test_case "SR ids stable" `Quick test_id_stability;
    Alcotest.test_case "coverage identities" `Quick test_coverage_identities;
    Alcotest.test_case "manual-path report" `Quick test_manual_report ]
