(** Wall-time spans with nesting, exported as human-readable summaries or
    Chrome trace_event JSON.

    Spans record only while {!Metrics.enabled} holds; otherwise [with_]
    runs its body directly.  The clock is pluggable ({!set_clock}) so
    tests can make recorded timings deterministic.

    [with_] may be called from any domain: the completed-span buffer is
    mutex-protected, and the nesting depth is tracked per domain, so
    concurrent workers (e.g. server request handlers) record correctly
    nested spans without interfering with each other. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_ns : int64;
  ev_dur_ns : int64;
  ev_depth : int;  (** nesting depth, 0 = top-level *)
  ev_seq : int;  (** completion sequence number *)
}

val set_clock : (unit -> int64) -> unit
(** Replace the nanosecond clock (tests inject a fake one here). *)

val use_default_clock : unit -> unit

val now_ns : unit -> int64
(** Current clock value: nanoseconds, never decreasing. *)

val with_ : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f ()] inside a span named [name]; the span is
    recorded when [f] returns or raises.  Spans nest. *)

val events : unit -> event list
(** Completed spans in chronological order (start time, then depth, then
    completion order). *)

val reset : unit -> unit

val to_chrome_json : unit -> string
(** The recorded spans as a Chrome trace_event JSON array — one complete
    ("ph":"X") event per line, timestamps in microseconds.  Open the file
    in chrome://tracing or {{:https://ui.perfetto.dev}Perfetto}. *)

val pp_dur : int64 Fmt.t
(** Human-readable duration (ns/us/ms/s). *)

val pp_summary : unit Fmt.t
(** Indented per-span duration summary. *)
