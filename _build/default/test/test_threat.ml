(* Tests for Fsa_refine.Threat: threat-tree generation. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Auth = Fsa_requirements.Auth
module Refine = Fsa_refine.Refine
module Threat = Fsa_refine.Threat
module S = Fsa_vanet.Scenario
module Evita = Fsa_vanet.Evita

let w = Agent.Symbolic "w"

let sense_req =
  Auth.make
    ~cause:(S.sense (Agent.Concrete 1))
    ~effect:(S.show w) ~stakeholder:(S.driver w)

let contains s sub =
  let rec go i =
    i + String.length sub <= String.length s
    && (String.sub s i (String.length sub) = sub || go (i + 1))
  in
  go 0

let test_tree_structure () =
  let tree = Threat.of_requirement S.two_vehicles sense_req in
  (match tree with
  | Threat.Goal { gate = Threat.Or; children; _ } ->
    Alcotest.(check int) "three refinement branches" 3 (List.length children)
  | Threat.Goal _ | Threat.Leaf _ -> Alcotest.fail "root must be an OR goal");
  (* leaves: one per surface flow + origin + sink compromise *)
  let surface = Refine.channels S.two_vehicles (Auth.cause sense_req) (Auth.effect sense_req) in
  Alcotest.(check int) "vector count = surface + 2 endpoints"
    (List.length surface + 2)
    (Threat.nb_vectors tree)

let test_residual_vectors () =
  let tree = Threat.of_requirement S.two_vehicles sense_req in
  let residual = Threat.residual_after_channel_protection tree in
  (* channel protection leaves exactly the endpoint compromises open —
     the paper's Sect. 2 observation about trust-zone analyses *)
  Alcotest.(check int) "two residual vectors" 2 (List.length residual);
  Alcotest.(check bool) "origin compromise present" true
    (List.exists
       (function Threat.Compromise_origin _ -> true | _ -> false)
       residual);
  Alcotest.(check bool) "sink compromise present" true
    (List.exists
       (function Threat.Compromise_sink _ -> true | _ -> false)
       residual)

let test_leaves_cover_attack_surface () =
  let tree = Threat.of_requirement S.two_vehicles sense_req in
  let forged_flows =
    List.filter_map
      (function Threat.Forge_flow f -> Some f | _ -> None)
      (Threat.leaves tree)
  in
  let surface =
    Refine.channels S.two_vehicles (Auth.cause sense_req) (Auth.effect sense_req)
  in
  Alcotest.(check bool) "every surface flow is a leaf" true
    (List.for_all
       (fun f -> List.exists (Fsa_model.Flow.equal f) forged_flows)
       surface)

let test_evita_trees () =
  let reqs =
    Fsa_requirements.Derive.of_sos ~stakeholder:Evita.stakeholder Evita.model
  in
  let trees = List.map (Threat.of_requirement Evita.model) reqs in
  Alcotest.(check int) "one tree per requirement" 29 (List.length trees);
  List.iter
    (fun t ->
      Alcotest.(check bool) "every tree has at least three vectors" true
        (Threat.nb_vectors t >= 3))
    trees

let test_rendering () =
  let tree = Threat.of_requirement S.two_vehicles sense_req in
  let text = Fmt.str "%a" Threat.pp_tree tree in
  Alcotest.(check bool) "text mentions forge" true (contains text "forge");
  Alcotest.(check bool) "text mentions OR gate" true (contains text "[OR]");
  let dot = Threat.dot tree in
  Alcotest.(check bool) "dot header" true (contains dot "digraph");
  Alcotest.(check bool) "dot mentions compromise" true (contains dot "compromise")

let suite =
  [ Alcotest.test_case "tree structure" `Quick test_tree_structure;
    Alcotest.test_case "residual vectors" `Quick test_residual_vectors;
    Alcotest.test_case "leaves cover the surface" `Quick test_leaves_cover_attack_surface;
    Alcotest.test_case "EVITA trees" `Quick test_evita_trees;
    Alcotest.test_case "rendering" `Quick test_rendering ]
