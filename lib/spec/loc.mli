(** Source locations and located errors of the specification language.

    A location is a span from [line]/[col] to [end_line]/[end_col]
    (1-based, inclusive), so diagnostics can underline whole tokens and
    constructs.  [line] and [col] alone identify the start, which keeps
    point-style consumers working unchanged. *)

type t = { line : int; col : int; end_line : int; end_col : int }

val dummy : t

val point : line:int -> col:int -> t
(** A single-character span. *)

val span : line:int -> col:int -> end_line:int -> end_col:int -> t

val is_dummy : t -> bool

val merge : t -> t -> t
(** The smallest span covering both locations; [dummy] is absorbing. *)

val compare : t -> t -> int
val pp : t Fmt.t

exception Error of t * string

val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val pp_exn : (t * string) Fmt.t
