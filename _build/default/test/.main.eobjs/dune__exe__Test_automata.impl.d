test/test_automata.ml: Alcotest Char Fmt Fsa_automata List Printf QCheck2 QCheck_alcotest String
