lib/mc/ctl.ml: Array Fmt Fsa_hom Fsa_lts Fsa_term List Queue
