test/main.mli:
