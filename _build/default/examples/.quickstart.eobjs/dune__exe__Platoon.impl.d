examples/platoon.ml: Fmt Fsa_lts Fsa_mc Fsa_requirements Fsa_term Fsa_vanet List
