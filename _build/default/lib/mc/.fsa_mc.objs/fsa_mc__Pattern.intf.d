lib/mc/pattern.mli: Fmt Fsa_hom Fsa_lts Fsa_term
