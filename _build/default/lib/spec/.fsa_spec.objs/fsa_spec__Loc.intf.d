lib/spec/loc.mli: Fmt Format
