lib/model/sos.mli: Action_graph Component Flow Fmt Fsa_term
