(* From elicited requirements to architectural protection options.

   The derived authenticity requirements are deliberately independent of
   security mechanisms and of the structure by which they are realised
   (hop-by-hop versus end-to-end).  This example performs the follow-up
   engineering step on the EVITA-scale architecture: for selected
   requirements it computes

     - every flow on a cause-to-effect path (the attack surface),
     - a minimum set of flows whose protection covers every path,
     - the hop-by-hop decomposition along each path, and
     - the end-to-end alternative.

   Run with: dune exec examples/refine_architecture.exe *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Auth = Fsa_requirements.Auth
module Refine = Fsa_refine.Refine
module Evita = Fsa_vanet.Evita

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  let requirements =
    Fsa_requirements.Derive.of_sos ~stakeholder:Evita.stakeholder Evita.model
  in
  Fmt.pr "The EVITA-scale model elicits %d authenticity requirements.@."
    (List.length requirements);

  section "Refinement plans for the brake actuation requirements";
  let brake_reqs =
    List.filter
      (fun r -> Action.label (Auth.effect r) = "brake_actuate")
      requirements
  in
  List.iter
    (fun req -> Fmt.pr "%a@.@." Refine.pp_plan (Refine.plan Evita.model req))
    brake_reqs;

  section "Protection-cost overview (minimum cut per requirement)";
  Fmt.pr "  %-60s %6s %8s %5s@." "requirement" "paths" "surface" "cut";
  List.iter
    (fun req ->
      let plan = Refine.plan Evita.model req in
      Fmt.pr "  %-60s %6d %8d %5d@."
        (Auth.to_string req)
        (List.length plan.Refine.p_paths)
        (List.length plan.Refine.p_surface)
        (List.length plan.Refine.p_min_cut))
    requirements;

  section "Hop-by-hop vs end-to-end for one V2X requirement";
  let v2x_req =
    List.find
      (fun r ->
        Action.label (Auth.cause r) = "esp_sense"
        && Action.label (Auth.effect r) = "v2x_send")
      requirements
  in
  let paths =
    Refine.simple_paths Evita.model (Auth.cause v2x_req) (Auth.effect v2x_req)
  in
  Fmt.pr "hop-by-hop along the first path:@.";
  List.iter
    (fun o -> Fmt.pr "  - %a@." Refine.pp_obligation o)
    (Refine.hop_by_hop Evita.model v2x_req (List.hd paths));
  Fmt.pr "end-to-end alternative:@.  - %a@." Refine.pp_obligation
    (Refine.end_to_end v2x_req);
  Fmt.pr
    "@.The choice between the two is exactly the architectural decision \
     the elicitation method postpones: both realise the same elicited \
     requirement.@."
