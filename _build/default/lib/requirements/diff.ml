(* Change-impact analysis between two versions of a system model.

   Architectures evolve: components are added, flows re-routed, policies
   introduced.  Because the derivation is deterministic, the security
   impact of a model change is exactly the difference of the derived
   requirement sets — plus the requirements whose classification changed
   (e.g. a dependency that used to be safety-functional and now exists
   only through a policy flow). *)

module Action = Fsa_term.Action
module Sos = Fsa_model.Sos

type reclassification = {
  rc_requirement : Auth.t;
  rc_before : Classify.class_;
  rc_after : Classify.class_;
}

type t = {
  added : Auth.t list;  (* new obligations introduced by the change *)
  removed : Auth.t list;  (* obligations that disappeared *)
  kept : Auth.t list;
  reclassified : reclassification list;
}

let compare_models ?stakeholder ~before ~after () =
  let old_reqs = Derive.of_sos ?stakeholder before in
  let new_reqs = Derive.of_sos ?stakeholder after in
  let added = Auth.diff new_reqs old_reqs in
  let removed = Auth.diff old_reqs new_reqs in
  let kept = Auth.diff new_reqs added in
  let reclassified =
    List.filter_map
      (fun r ->
        let rc_before = Classify.classify before r in
        let rc_after = Classify.classify after r in
        if Classify.equal_class rc_before rc_after then None
        else Some { rc_requirement = r; rc_before; rc_after })
      kept
  in
  { added; removed; kept; reclassified }

let is_neutral d = d.added = [] && d.removed = [] && d.reclassified = []

let pp ppf d =
  if is_neutral d then
    Fmt.pf ppf "the change does not affect the requirement set"
  else begin
    Fmt.pf ppf "@[<v>";
    if d.added <> [] then
      Fmt.pf ppf "added requirements:@,%a@," Auth.pp_set d.added;
    if d.removed <> [] then
      Fmt.pf ppf "removed requirements:@,%a@," Auth.pp_set d.removed;
    if d.reclassified <> [] then
      Fmt.pf ppf "reclassified:@,%a@,"
        Fmt.(
          list ~sep:cut (fun ppf rc ->
              Fmt.pf ppf "- %a: %a -> %a" Auth.pp rc.rc_requirement
                Classify.pp_class rc.rc_before Classify.pp_class rc.rc_after))
        d.reclassified;
    Fmt.pf ppf "unchanged: %d requirement(s)@]" (List.length d.kept)
  end
