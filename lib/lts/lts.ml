(* Reachability graphs (Definition 3 of the paper).

   The behaviour of an APA is the set of all coherent sequences of state
   transitions starting in the initial state; state transitions are the
   labelled edges of a directed graph whose nodes are the reachable global
   states.  States are numbered in breadth-first discovery order starting
   from 1, and printed M-1, M-2, ... in the style of the SH verification
   tool. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module State = Fsa_apa.Apa.State

type transition = { t_src : int; t_label : Action.t; t_dst : int }

type t = {
  apa_name : string;
  states : State.t array;
  initial : int;  (* always 0 *)
  succs : transition list array;  (* outgoing transitions, by source *)
  preds : transition list array;  (* incoming transitions, by target *)
}

exception State_space_too_large of int

let log_src = Logs.Src.create "fsa.lts" ~doc:"state-space exploration"

module Log = (val Logs.src_log log_src)

module Metrics = Fsa_obs.Metrics
module Span = Fsa_obs.Span
module Progress = Fsa_obs.Progress

let m_states = Metrics.counter "lts.states_explored"
let m_transitions = Metrics.counter "lts.transitions"
let m_dedup = Metrics.counter "lts.dedup_hits"
let m_shard_conflicts = Metrics.counter "lts.shard_conflicts"
let g_frontier_peak = Metrics.gauge "lts.frontier_peak"
let g_rate = Metrics.gauge "lts.states_per_sec"
let g_domains = Metrics.gauge "lts.domains"

let h_out_degree =
  Metrics.histogram ~buckets:[| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64. |]
    "lts.out_degree"

module State_table = Hashtbl.Make (struct
  type t = State.t

  let equal = State.equal
  let hash = State.hash
end)

(* Growable arrays for the exploration accumulators.  The previous list
   accumulators were built reversed and re-walked at the end; appending
   into a doubling array keeps the hot loop allocation-light and the
   final assembly a plain [Array.sub]. *)
module Buf = struct
  type 'a t = { mutable data : 'a array; mutable len : int }

  let create () = { data = [||]; len = 0 }
  let length b = b.len
  let get b i = b.data.(i)

  let push b x =
    let cap = Array.length b.data in
    if b.len = cap then begin
      let data = Array.make (max 16 (2 * cap)) x in
      Array.blit b.data 0 data 0 b.len;
      b.data <- data
    end;
    b.data.(b.len) <- x;
    b.len <- b.len + 1

  let to_array b = Array.sub b.data 0 b.len

  let iter f b =
    for i = 0 to b.len - 1 do
      f b.data.(i)
    done
end

(* Exploration-time reduction hooks (symmetry / partial order, see
   Fsa_sym).  Both must be pure functions of their arguments: the
   sequential and the parallel explorer apply them transition-by-
   transition and rely on that purity for bit-identical results. *)
type reduction = {
  rd_canon : State.t -> State.t;
      (* canonical orbit representative; applied to every successor
         before interning (never to the initial state) *)
  rd_ample :
    State.t ->
    (Fsa_apa.Apa.rule * Action.t * State.t) list ->
    (Fsa_apa.Apa.rule * Action.t * State.t) list;
      (* restrict a state's enabled transitions to an ample subset *)
}

let no_reduction = { rd_canon = Fun.id; rd_ample = (fun _ succs -> succs) }

(* Keep transition lists deterministically ordered. *)
let order_transition a b =
  let c = Stdlib.compare a.t_src b.t_src in
  if c <> 0 then c
  else
    let c = Action.compare a.t_label b.t_label in
    if c <> 0 then c else Stdlib.compare a.t_dst b.t_dst

(* Shared final assembly: both the sequential and the parallel explorer
   hand their states (in canonical BFS order) and edges to this, so the
   resulting structures are constructed identically. *)
let assemble ~apa_name ~states ~iter_edges =
  let succs = Array.make (Array.length states) [] in
  let preds = Array.make (Array.length states) [] in
  iter_edges (fun tr ->
      succs.(tr.t_src) <- tr :: succs.(tr.t_src);
      preds.(tr.t_dst) <- tr :: preds.(tr.t_dst));
  Array.iteri (fun i l -> succs.(i) <- List.sort order_transition l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.sort order_transition l) preds;
  { apa_name; states; initial = 0; succs; preds }

let explore ?(max_states = 1_000_000) ?(reduce = no_reduction) ?progress apa =
  Span.with_ ~cat:"lts" "lts.explore" @@ fun () ->
  let obs = Metrics.enabled () in
  let t0 = if obs then Span.now_ns () else 0L in
  let initial = Fsa_apa.Apa.initial_state apa in
  let index = State_table.create 1024 in
  State_table.replace index initial 0;
  (* the states buffer doubles as the BFS queue: states are appended in
     discovery order and expanded in append order *)
  let states = Buf.create () in
  Buf.push states initial;
  let edges = Buf.create () in
  let cursor = ref 0 in
  (* Progress and the rate gauge are finalized on every exit path:
     aborting on State_space_too_large used to leave the live progress
     line dangling and [lts.states_per_sec] unset. *)
  Fun.protect
    ~finally:(fun () ->
      if obs then begin
        let elapsed = Int64.to_float (Int64.sub (Span.now_ns ()) t0) /. 1e9 in
        if elapsed > 0. then
          Metrics.set_gauge g_rate (float_of_int (Buf.length states) /. elapsed)
      end;
      match progress with
      | Some p -> Progress.finish p ~count:(Buf.length states)
      | None -> ())
  @@ fun () ->
  while !cursor < Buf.length states do
    let src_id = !cursor in
    let src = Buf.get states src_id in
    incr cursor;
    let succs = reduce.rd_ample src (Fsa_apa.Apa.step apa src) in
    if obs then begin
      Metrics.incr m_states;
      Metrics.incr ~by:(List.length succs) m_transitions;
      Metrics.observe h_out_degree (float_of_int (List.length succs));
      Metrics.set_gauge_max g_frontier_peak
        (float_of_int (Buf.length states - !cursor))
    end;
    (match progress with
    | Some p ->
      Progress.tick p ~count:(Buf.length states)
        ~frontier:(Buf.length states - !cursor)
    | None -> ());
    List.iter
      (fun (_rule, label, dst) ->
        let dst = reduce.rd_canon dst in
        let dst_id =
          match State_table.find_opt index dst with
          | Some id ->
            if obs then Metrics.incr m_dedup;
            id
          | None ->
            let id = Buf.length states in
            if id >= max_states then raise (State_space_too_large max_states);
            State_table.replace index dst id;
            Buf.push states dst;
            id
        in
        Buf.push edges { t_src = src_id; t_label = label; t_dst = dst_id })
      succs
  done;
  Log.debug (fun m ->
      m "explored %s: %d states, %d transitions" (Fsa_apa.Apa.name apa)
        (Buf.length states) (Buf.length edges));
  assemble ~apa_name:(Fsa_apa.Apa.name apa) ~states:(Buf.to_array states)
    ~iter_edges:(fun f -> Buf.iter f edges)

(* ------------------------------------------------------------------ *)
(* Parallel exploration                                                 *)
(* ------------------------------------------------------------------ *)

(* Domain-based level-synchronous BFS.

   Each level's frontier is expanded by [jobs] domains that self-schedule
   chunks off a shared atomic cursor (cheap work-stealing); discovered
   states are deduplicated in a sharded hash table — one mutex per shard,
   shard chosen by the state's memoized hash — and numbered provisionally
   by an atomic counter, so provisional numbers depend on domain
   interleaving.  A final sequential renumbering pass replays the
   discovery in canonical BFS order over the recorded per-state successor
   lists (which preserve [Apa.step] order), making the result
   bit-identical to {!explore}: same M-k numbering, same sorted
   transition lists.  The expensive work — rule matching in [Apa.step] —
   happens in the parallel phase; renumbering is a linear scan. *)

type shard = {
  sh_lock : Mutex.t;
  sh_table : int State_table.t;
  mutable sh_members : (int * State.t) list;
}

let explore_par ?(max_states = 1_000_000) ?(reduce = no_reduction) ?progress
    ?shards ~jobs apa =
  if jobs <= 1 then explore ~max_states ~reduce ?progress apa
  else begin
    Span.with_ ~cat:"lts" "lts.explore_par" @@ fun () ->
    let obs = Metrics.enabled () in
    let t0 = if obs then Span.now_ns () else 0L in
    (* instruments are registered here, on the main domain: the metrics
       registry itself is not safe for concurrent registration *)
    let domain_rate =
      Array.init jobs (fun i ->
          Metrics.gauge (Printf.sprintf "lts.d%d.states_per_sec" i))
    in
    let nshards =
      let requested =
        match shards with Some s -> max 1 s | None -> 64 * jobs
      in
      let rec pow2 n = if n >= requested then n else pow2 (2 * n) in
      pow2 1
    in
    let mask = nshards - 1 in
    let shards =
      Array.init nshards (fun _ ->
          { sh_lock = Mutex.create ();
            sh_table = State_table.create 256;
            sh_members = [] })
    in
    let next_id = Atomic.make 0 in
    let too_large = Atomic.make false in
    let conflicts = Atomic.make 0 in
    let total_transitions = Atomic.make 0 in
    let total_dedup = Atomic.make 0 in
    (* insert into the sharded table; returns the id, whether the state is
       new, and whether the shard lock was contended *)
    let insert st =
      let sh = shards.(State.hash st land mask) in
      let contended =
        if obs then
          if Mutex.try_lock sh.sh_lock then false
          else begin
            Mutex.lock sh.sh_lock;
            true
          end
        else begin
          Mutex.lock sh.sh_lock;
          false
        end
      in
      let res =
        match State_table.find_opt sh.sh_table st with
        | Some id -> (id, false)
        | None ->
          let id = Atomic.fetch_and_add next_id 1 in
          if id >= max_states then begin
            Atomic.set too_large true;
            (id, false)
          end
          else begin
            State_table.replace sh.sh_table st id;
            sh.sh_members <- (id, st) :: sh.sh_members;
            (id, true)
          end
      in
      Mutex.unlock sh.sh_lock;
      (res, contended)
    in
    let initial = Fsa_apa.Apa.initial_state apa in
    let (id0, _), _ = insert initial in
    assert (id0 = 0);
    let frontier = ref [| (0, initial) |] in
    (* per-domain accumulators; index [w] is touched only by worker [w]
       while domains run, and by the main domain after the join *)
    let all_records : (int * (Action.t * int) list) list array =
      Array.make jobs []
    in
    let domain_expanded = Array.make jobs 0 in
    let domain_busy_ns = Array.make jobs 0L in
    let exception Abort in
    Fun.protect
      ~finally:(fun () ->
        if obs then begin
          Metrics.set_gauge g_domains (float_of_int jobs);
          let elapsed =
            Int64.to_float (Int64.sub (Span.now_ns ()) t0) /. 1e9
          in
          if elapsed > 0. then
            Metrics.set_gauge g_rate
              (float_of_int (Atomic.get next_id) /. elapsed)
        end;
        match progress with
        | Some p -> Progress.finish p ~count:(Atomic.get next_id)
        | None -> ())
    @@ fun () ->
    while Array.length !frontier > 0 do
      let fr = !frontier in
      let len = Array.length fr in
      if obs then Metrics.set_gauge_max g_frontier_peak (float_of_int len);
      let cursor = Atomic.make 0 in
      let chunk = max 1 (min 64 (len / (jobs * 4))) in
      let next_frontiers = Array.make jobs [] in
      let worker w =
        let t_start = Span.now_ns () in
        let my_records = ref [] in
        let my_next = ref [] in
        let my_expanded = ref 0 in
        let my_conflicts = ref 0 in
        let my_transitions = ref 0 in
        let my_dedup = ref 0 in
        (try
           let continue = ref true in
           while !continue do
             if Atomic.get too_large then raise Abort;
             let i0 = Atomic.fetch_and_add cursor chunk in
             if i0 >= len then continue := false
             else
               for i = i0 to min (len - 1) (i0 + chunk - 1) do
                 let src_id, src = fr.(i) in
                 let succs = reduce.rd_ample src (Fsa_apa.Apa.step apa src) in
                 incr my_expanded;
                 my_transitions := !my_transitions + List.length succs;
                 let dsts =
                   List.map
                     (fun (_rule, label, dst) ->
                       let (id, fresh), contended =
                         insert (reduce.rd_canon dst)
                       in
                       if contended then incr my_conflicts;
                       if Atomic.get too_large then raise Abort;
                       if fresh then my_next := (id, dst) :: !my_next
                       else incr my_dedup;
                       (label, id))
                     succs
                 in
                 my_records := (src_id, dsts) :: !my_records
               done
           done
         with Abort -> ());
        all_records.(w) <- List.rev_append !my_records all_records.(w);
        next_frontiers.(w) <- !my_next;
        domain_expanded.(w) <- domain_expanded.(w) + !my_expanded;
        domain_busy_ns.(w) <-
          Int64.add domain_busy_ns.(w)
            (Int64.sub (Span.now_ns ()) t_start);
        ignore (Atomic.fetch_and_add conflicts !my_conflicts);
        ignore (Atomic.fetch_and_add total_transitions !my_transitions);
        ignore (Atomic.fetch_and_add total_dedup !my_dedup)
      in
      (* spawned workers adopt the caller's trace context, so their
         recorder events and spans land in the requesting trace's tree
         instead of an anonymous one *)
      let ctx = Span.current_context () in
      let doms =
        Array.init (jobs - 1) (fun w ->
            Domain.spawn (fun () -> Span.with_context ctx (fun () -> worker (w + 1))))
      in
      worker 0;
      Array.iter Domain.join doms;
      if Atomic.get too_large then raise (State_space_too_large max_states);
      frontier :=
        Array.concat (Array.to_list (Array.map Array.of_list next_frontiers));
      match progress with
      | Some p ->
        Progress.tick p ~count:(Atomic.get next_id)
          ~frontier:(Array.length !frontier)
      | None -> ()
    done;
    let total = Atomic.get next_id in
    let prov_states = Array.make total initial in
    Array.iter
      (fun sh ->
        List.iter (fun (id, st) -> prov_states.(id) <- st) sh.sh_members)
      shards;
    let prov_succ = Array.make total [] in
    Array.iter
      (List.iter (fun (src, dsts) -> prov_succ.(src) <- dsts))
      all_records;
    (* canonical renumbering: replay the BFS deterministically — expand in
       canonical id order, successors in recorded Apa.step order *)
    let canon = Array.make total (-1) in
    let order = Array.make total 0 in
    canon.(0) <- 0;
    let nb = ref 1 in
    let c = ref 0 in
    while !c < !nb do
      let p = order.(!c) in
      List.iter
        (fun (_label, d) ->
          if canon.(d) < 0 then begin
            canon.(d) <- !nb;
            order.(!nb) <- d;
            incr nb
          end)
        prov_succ.(p);
      incr c
    done;
    assert (!nb = total);
    let states = Array.init total (fun cid -> prov_states.(order.(cid))) in
    let iter_edges f =
      for cid = 0 to total - 1 do
        List.iter
          (fun (label, d) ->
            f { t_src = cid; t_label = label; t_dst = canon.(d) })
          prov_succ.(order.(cid))
      done
    in
    if obs then begin
      Metrics.incr ~by:total m_states;
      Metrics.incr ~by:(Atomic.get total_transitions) m_transitions;
      Metrics.incr ~by:(Atomic.get total_dedup) m_dedup;
      Metrics.incr ~by:(Atomic.get conflicts) m_shard_conflicts;
      Array.iter
        (fun succs ->
          Metrics.observe h_out_degree (float_of_int (List.length succs)))
        prov_succ;
      Array.iteri
        (fun w busy ->
          let busy_s = Int64.to_float busy /. 1e9 in
          if busy_s > 0. then
            Metrics.set_gauge domain_rate.(w)
              (float_of_int domain_expanded.(w) /. busy_s))
        domain_busy_ns
    end;
    Log.debug (fun m ->
        m "explored %s with %d domains: %d states, %d transitions"
          (Fsa_apa.Apa.name apa) jobs total
          (Atomic.get total_transitions));
    assemble ~apa_name:(Fsa_apa.Apa.name apa) ~states ~iter_edges
  end

let name t = t.apa_name
let nb_states t = Array.length t.states
let nb_transitions t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.succs
let initial t = t.initial
let state t i = t.states.(i)
let succ t i = t.succs.(i)
let pred t i = t.preds.(i)

let transitions t = Array.to_list t.succs |> List.concat

let iter_transitions f t = Array.iter (fun l -> List.iter f l) t.succs

let fold_transitions f t acc =
  Array.fold_left
    (fun acc l -> List.fold_left (fun acc tr -> f tr acc) acc l)
    acc t.succs

(* Synthetic / imported graphs: states carry no APA content.  Intended
   for tests and for ingesting externally computed reachability graphs;
   state 0 is the initial state. *)
let of_edges ?(name = "imported") ~nb_states edges =
  if nb_states <= 0 then invalid_arg "Lts.of_edges: nb_states must be positive";
  List.iter
    (fun tr ->
      if
        tr.t_src < 0 || tr.t_src >= nb_states || tr.t_dst < 0
        || tr.t_dst >= nb_states
      then invalid_arg "Lts.of_edges: transition endpoint out of range")
    edges;
  assemble ~apa_name:name
    ~states:(Array.make nb_states State.empty)
    ~iter_edges:(fun f -> List.iter f edges)

(* Like [of_edges], but with caller-supplied state contents — the unfold
   of a symmetry quotient rebuilds the full graph this way, with real
   states so that downstream completion predicates and state printing
   keep working. *)
let of_graph ?(name = "imported") ~states edges =
  let nb_states = Array.length states in
  if nb_states <= 0 then invalid_arg "Lts.of_graph: no states";
  List.iter
    (fun tr ->
      if
        tr.t_src < 0 || tr.t_src >= nb_states || tr.t_dst < 0
        || tr.t_dst >= nb_states
      then invalid_arg "Lts.of_graph: transition endpoint out of range")
    edges;
  assemble ~apa_name:name ~states:(Array.copy states) ~iter_edges:(fun f ->
      List.iter f edges)

let state_name i = Printf.sprintf "M-%d" (i + 1)

let fold_states f t acc =
  let acc = ref acc in
  Array.iteri (fun i _ -> acc := f i !acc) t.states;
  !acc

let alphabet t =
  fold_transitions
    (fun tr acc -> Action.Set.add tr.t_label acc)
    t Action.Set.empty

(* Dead states: no outgoing transition ("+++ dead +++" in the tool). *)
let deadlocks t =
  fold_states (fun i acc -> if t.succs.(i) = [] then i :: acc else acc) t []
  |> List.rev

(* Minima of the partial order of functionally dependent actions: every
   action leaving the initial state on any trace is a minimum, because it
   does not depend on any other action having occurred before
   (Sect. 5.4). *)
let minima t =
  List.fold_left
    (fun acc tr -> Action.Set.add tr.t_label acc)
    Action.Set.empty t.succs.(t.initial)

(* Maxima: the actions leading into a dead state from any trace — they do
   not trigger any further action after they have been performed. *)
let maxima t =
  List.fold_left
    (fun acc dead ->
      List.fold_left
        (fun acc tr -> Action.Set.add tr.t_label acc)
        acc t.preds.(dead))
    Action.Set.empty (deadlocks t)

(* Shortest trace (sequence of labels) from the initial state to state [i]. *)
let trace_to t i =
  let n = nb_states t in
  let prev = Array.make n None in
  let visited = Array.make n false in
  let queue = Queue.create () in
  visited.(t.initial) <- true;
  Queue.add t.initial queue;
  (try
     while not (Queue.is_empty queue) do
       let s = Queue.pop queue in
       if s = i then raise Exit;
       List.iter
         (fun tr ->
           if not visited.(tr.t_dst) then begin
             visited.(tr.t_dst) <- true;
             prev.(tr.t_dst) <- Some tr;
             Queue.add tr.t_dst queue
           end)
         t.succs.(s)
     done
   with Exit -> ());
  if not visited.(i) then None
  else begin
    let rec build acc s =
      if s = t.initial then acc
      else
        match prev.(s) with
        | None -> acc
        | Some tr -> build (tr.t_label :: acc) tr.t_src
    in
    Some (build [] i)
  end

(* All words of the (prefix-closed) action language up to length [n] —
   exponential, for tests and small examples only. *)
let words ~max_len t =
  let rec go acc word len s =
    let acc = List.rev word :: acc in
    if len = max_len then acc
    else
      List.fold_left
        (fun acc tr -> go acc (tr.t_label :: word) (len + 1) tr.t_dst)
        acc t.succs.(s)
  in
  List.sort_uniq (List.compare Action.compare) (go [] [] 0 t.initial)

(* Does some occurrence of a [target]-labelled transition happen on a path
   from the initial state that contains no prior [before]-labelled
   transition?  Used for the direct (non-abstracted) functional dependence
   test: [target] depends on [before] iff no such path exists. *)
let reachable_without t ~avoid ~target =
  let n = nb_states t in
  let visited = Array.make n false in
  let queue = Queue.create () in
  visited.(t.initial) <- true;
  Queue.add t.initial queue;
  let found = ref false in
  while not (Queue.is_empty queue || !found) do
    let s = Queue.pop queue in
    List.iter
      (fun tr ->
        if target tr.t_label then found := true
        else if (not (avoid tr.t_label)) && not visited.(tr.t_dst) then begin
          visited.(tr.t_dst) <- true;
          Queue.add tr.t_dst queue
        end)
      t.succs.(s)
  done;
  !found

let depends_on t ~max_action ~min_action =
  not
    (reachable_without t
       ~avoid:(Action.equal min_action)
       ~target:(Action.equal max_action))

(* The number of complete runs (maximal paths from the initial state to a
   dead state); [None] when the graph has a cycle.  For the paper's
   every-action-once scenarios this equals the number of linear
   extensions of the event poset.

   Iterative with an explicit stack: the natural recursion is one frame
   per path edge and overflows the OCaml stack on long-chain graphs. *)
let count_complete_runs t =
  let n = nb_states t in
  let colour = Array.make n 0 in (* 0 unvisited, 1 on stack, 2 done *)
  let memo = Array.make n (-1) in
  let exception Cyclic in
  (* frame: state, successors not yet accounted, partial sum *)
  let stack : (int * transition list ref * int ref) Stack.t =
    Stack.create ()
  in
  let enter s =
    colour.(s) <- 1;
    Stack.push (s, ref t.succs.(s), ref 0) stack
  in
  try
    enter t.initial;
    while not (Stack.is_empty stack) do
      let s, rest, acc = Stack.top stack in
      match !rest with
      | [] ->
        ignore (Stack.pop stack);
        let total = if t.succs.(s) = [] then 1 else !acc in
        colour.(s) <- 2;
        memo.(s) <- total;
        (match Stack.top_opt stack with
        | Some (_, _, acc') -> acc' := !acc' + total
        | None -> ())
      | tr :: tl ->
        rest := tl;
        let d = tr.t_dst in
        if memo.(d) >= 0 then acc := !acc + memo.(d)
        else if colour.(d) = 1 then raise Cyclic
        else enter d
    done;
    Some memo.(t.initial)
  with Cyclic -> None

(* Classify dead states into complete runs and stuck (incomplete) ones by
   a caller-supplied completion predicate on states — a modelling-error
   diagnostic: a stuck deadlock usually indicates a message consumed by a
   component that could not process it. *)
type deadlock_report = { dr_complete : int list; dr_stuck : int list }

let classify_deadlocks t ~complete =
  let complete_l, stuck =
    List.partition (fun s -> complete t.states.(s)) (deadlocks t)
  in
  { dr_complete = complete_l; dr_stuck = stuck }

type stats = {
  nb_states : int;
  nb_transitions : int;
  nb_deadlocks : int;
  nb_labels : int;
}

let stats t =
  { nb_states = nb_states t;
    nb_transitions = nb_transitions t;
    nb_deadlocks = List.length (deadlocks t);
    nb_labels = Action.Set.cardinal (alphabet t) }

let pp_stats ppf s =
  Fmt.pf ppf "states: %d, transitions: %d, dead states: %d, labels: %d"
    s.nb_states s.nb_transitions s.nb_deadlocks s.nb_labels

let dot ?(name = "reachability") t =
  let d = Fsa_graph.Dot.create ~graph_attrs:[ ("rankdir", "TB") ] name in
  let dead = deadlocks t in
  Array.iteri
    (fun i _ ->
      let attrs =
        if i = t.initial then [ ("shape", "box"); ("style", "bold") ]
        else if List.mem i dead then [ ("shape", "doublecircle") ]
        else []
      in
      Fsa_graph.Dot.node ~attrs d (state_name i))
    t.states;
  iter_transitions
    (fun tr ->
      Fsa_graph.Dot.edge
        ~attrs:[ ("label", Action.to_string tr.t_label) ]
        d (state_name tr.t_src) (state_name tr.t_dst))
    t;
  Fsa_graph.Dot.to_string d

(* The tool's summary of minima and maxima (Example 6): minima with the
   state reached from M-1 by that action; maxima with the state from which
   the dead state is entered. *)
let pp_min_max ppf t =
  let minima_entries =
    List.map (fun tr -> (tr.t_label, tr.t_dst)) t.succs.(t.initial)
  in
  let maxima_entries =
    List.concat_map
      (fun dead -> List.map (fun tr -> (tr.t_label, tr.t_src)) t.preds.(dead))
      (deadlocks t)
  in
  let pp_entry ppf (a, s) =
    Fmt.pf ppf "%a %s" Action.pp a (state_name s)
  in
  Fmt.pf ppf "@[<v>The minima of this analysis:@,%a@,The corresponding maxima:@,%a@]"
    Fmt.(list ~sep:cut pp_entry)
    minima_entries
    Fmt.(list ~sep:cut pp_entry)
    maxima_entries
