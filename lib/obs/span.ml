(* Wall-time spans with nesting.

   A span measures one phase of the pipeline (elaborate, explore, derive,
   ...).  Spans nest lexically via [with_]; each completed span is kept in
   a process-wide buffer and can be exported either as a human-readable
   indented summary or as Chrome trace_event JSON ("ph":"X" complete
   events, timestamps in microseconds) that chrome://tracing and Perfetto
   open directly.

   The clock is pluggable so that tests can inject a deterministic fake;
   the default derives a never-decreasing nanosecond clock from
   [Unix.gettimeofday].  Like metrics, recording is gated on
   [Metrics.enabled]: with observability off, [with_] is a tail call to
   its body. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_ns : int64;
  ev_dur_ns : int64;
  ev_depth : int;
  ev_seq : int;
}

(* Rebased to process start: small offsets keep full double precision in
   [gettimeofday], giving effectively-nanosecond resolution, and trace
   timestamps start near zero.  Clamped to be non-decreasing. *)
let default_clock =
  let epoch = Unix.gettimeofday () in
  let last = ref 0L in
  fun () ->
    let now = Int64.of_float ((Unix.gettimeofday () -. epoch) *. 1e9) in
    if Int64.compare now !last > 0 then last := now;
    !last

let clock = ref default_clock
let set_clock f = clock := f
let use_default_clock () = clock := default_clock
let now_ns () = !clock ()

(* The completed-span buffer is shared across domains (server workers
   record request spans concurrently) and protected by a mutex; the
   nesting depth is per-domain state, so spans nest lexically within
   each domain without cross-talk. *)
let recorded : event list ref = ref []
let seq = ref 0
let lock = Mutex.create ()
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let reset () =
  Mutex.protect lock (fun () ->
      recorded := [];
      seq := 0);
  Domain.DLS.get depth_key := 0

let with_ ?(cat = "fsa") name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let start = now_ns () in
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    Stdlib.incr depth;
    let finish () =
      Stdlib.decr depth;
      let stop = now_ns () in
      Mutex.protect lock (fun () ->
          let s = !seq in
          Stdlib.incr seq;
          recorded :=
            { ev_name = name;
              ev_cat = cat;
              ev_start_ns = start;
              ev_dur_ns = Int64.sub stop start;
              ev_depth = d;
              ev_seq = s }
            :: !recorded)
    in
    Fun.protect ~finally:finish f
  end

(* Chronological order: by start time, parents before the children that
   share their start instant, sequence number as the final tiebreak. *)
let events () =
  List.sort
    (fun a b ->
      let c = Int64.compare a.ev_start_ns b.ev_start_ns in
      if c <> 0 then c
      else
        let c = Stdlib.compare a.ev_depth b.ev_depth in
        if c <> 0 then c else Stdlib.compare a.ev_seq b.ev_seq)
    (Mutex.protect lock (fun () -> !recorded))

(* Fixed-point microseconds with nanosecond precision: deterministic and
   valid as a JSON number. *)
let us_of_ns ns =
  Printf.sprintf "%Ld.%03Ld" (Int64.div ns 1_000L) (Int64.rem ns 1_000L)

let to_chrome_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  let first = ref true in
  List.iter
    (fun ev ->
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Buffer.add_string b "{\"name\":\"";
      Metrics.json_escape b ev.ev_name;
      Buffer.add_string b "\",\"cat\":\"";
      Metrics.json_escape b ev.ev_cat;
      Buffer.add_string b "\",\"ph\":\"X\",\"ts\":";
      Buffer.add_string b (us_of_ns ev.ev_start_ns);
      Buffer.add_string b ",\"dur\":";
      Buffer.add_string b (us_of_ns ev.ev_dur_ns);
      Buffer.add_string b ",\"pid\":0,\"tid\":1,\"args\":{\"depth\":";
      Buffer.add_string b (string_of_int ev.ev_depth);
      Buffer.add_string b "}}")
    (events ());
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let pp_dur ppf ns =
  let f = Int64.to_float ns in
  if f >= 1e9 then Fmt.pf ppf "%.2f s" (f /. 1e9)
  else if f >= 1e6 then Fmt.pf ppf "%.2f ms" (f /. 1e6)
  else if f >= 1e3 then Fmt.pf ppf "%.2f us" (f /. 1e3)
  else Fmt.pf ppf "%Ld ns" ns

let pp_summary ppf () =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun ev ->
      Fmt.pf ppf "%s%-*s %a@,"
        (String.make (2 * ev.ev_depth) ' ')
        (max 1 (40 - (2 * ev.ev_depth)))
        ev.ev_name pp_dur ev.ev_dur_ns)
    (events ());
  Fmt.pf ppf "@]"
