(* The canonical APA of a functional model.

   Any loop-free functional SoS model induces an operational token game:
   each action is an elementary automaton that consumes one token per
   incoming functional flow and produces one token per outgoing flow;
   system inputs (minimal actions) are triggered by a pending environment
   token.  Every action fires exactly once, enabled exactly when all of
   its dependencies have delivered — so the reachability graph of the
   generated APA is precisely the lattice of order ideals of the model's
   event poset, and the tool-assisted analysis path becomes available for
   every manual-path model without writing an APA by hand.

   Transition labels are the model's actions themselves, which makes
   cross-validation between the two paths an identity mapping. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Sos = Fsa_model.Sos
module Flow = Fsa_model.Flow
module AG = Fsa_model.Action_graph

let token = Term.sym "t"

(* Deterministic state-component names. *)
let flow_component f =
  Fmt.str "flow:%a->%a" Action.pp (Flow.src f) Action.pp (Flow.dst f)

let pending_component a = Fmt.str "pending:%a" Action.pp a
let out_component a = Fmt.str "out:%a" Action.pp a

(* A unique rule name per action (rule names must be distinct even when
   two actions share a label). *)
let rule_name a = Fmt.str "do:%a" Action.pp a

let compile ?(name = "model_apa") sos =
  let flows = Sos.all_flows sos in
  let actions = Sos.all_actions sos in
  let incoming a =
    List.filter (fun f -> Action.equal (Flow.dst f) a) flows
  in
  let outgoing a =
    List.filter (fun f -> Action.equal (Flow.src f) a) flows
  in
  let components =
    List.map (fun f -> (flow_component f, Term.Set.empty)) flows
    @ List.concat_map
        (fun a ->
          let pend =
            if incoming a = [] then
              [ (pending_component a, Term.Set.singleton token) ]
            else []
          in
          let out =
            if outgoing a = [] then [ (out_component a, Term.Set.empty) ]
            else []
          in
          pend @ out)
        actions
  in
  let rules =
    List.map
      (fun a ->
        let takes =
          match incoming a with
          | [] -> [ Apa.take (pending_component a) token ]
          | flows_in -> List.map (fun f -> Apa.take (flow_component f) token) flows_in
        in
        let puts =
          match outgoing a with
          | [] -> [ Apa.put (out_component a) token ]
          | flows_out -> List.map (fun f -> Apa.put (flow_component f) token) flows_out
        in
        Apa.rule (rule_name a) ~takes ~puts ~label:(fun _ -> a))
      actions
  in
  Apa.make ~components ~rules name

(* The tool-path analysis of a functional model through its canonical
   APA.  The stakeholder assignment is shared with the manual path, so
   the requirement sets are directly comparable (and provably equal: the
   generated behaviour realises exactly the model's dependency order). *)
let tool_analysis ?meth ?max_states
    ?(stakeholder = Fsa_requirements.Derive.default_stakeholder) sos =
  Analysis.tool ?meth ?max_states ~stakeholder
    (compile ~name:(Sos.name sos) sos)

(* Cross-validate the two paths on the same model; labels are identical,
   so the correspondence map is the identity. *)
let crosscheck ?meth ?max_states ?stakeholder sos =
  let manual =
    Analysis.manual
      ?stakeholder:
        (match stakeholder with Some s -> Some s | None -> None)
      sos
  in
  let tool = tool_analysis ?meth ?max_states ?stakeholder sos in
  Analysis.crosscheck
    ~map:(fun a -> Some a)
    ~manual_requirements:manual.Analysis.m_requirements
    ~tool_requirements:tool.Analysis.t_requirements
