(* Tests for Fsa_param: uniform requirement families and self-similarity. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Auth = Fsa_requirements.Auth
module Family = Fsa_param.Family
module Selfsim = Fsa_param.Selfsim
module S = Fsa_vanet.Scenario
module V = Fsa_vanet.Vehicle_apa
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom

(* The paper's schema: chi_n = the three base requirements plus one
   position requirement per forwarding vehicle (Sect. 4.4). *)
let chain_schema n =
  let w = Agent.Symbolic "w" in
  let base =
    [ Auth.make ~cause:(S.sense (Agent.Concrete 1)) ~effect:(S.show w)
        ~stakeholder:(S.driver w);
      Auth.make ~cause:(S.gps_pos (Agent.Concrete 1)) ~effect:(S.show w)
        ~stakeholder:(S.driver w);
      Auth.make ~cause:(S.gps_pos w) ~effect:(S.show w)
        ~stakeholder:(S.driver w) ]
  in
  let forwarders =
    List.map
      (fun i ->
        Auth.make ~cause:(S.gps_pos (Agent.Concrete i)) ~effect:(S.show w)
          ~stakeholder:(S.driver w))
      (S.forwarders_of_chain n)
  in
  base @ forwarders

let test_chain_schema_uniform () =
  Alcotest.(check bool) "chi_n follows the paper's schema for n = 2..7" true
    (Family.is_uniform ~family:S.chain ~schema:chain_schema
       [ 2; 3; 4; 5; 6; 7 ])

let test_schema_mismatch_detected () =
  let broken_schema n = List.tl (chain_schema n) in
  let mismatches =
    Family.check_schema ~family:S.chain ~schema:broken_schema [ 2; 3 ]
  in
  Alcotest.(check int) "both instances flagged" 2 (List.length mismatches);
  match mismatches with
  | m :: _ ->
    Alcotest.(check int) "parameter recorded" 2 m.Family.parameter;
    Alcotest.(check bool) "difference rendered" true
      (String.length (Fmt.str "%a" Family.pp_mismatch m) > 0)
  | [] -> Alcotest.fail "expected mismatches"

let test_increments () =
  let incs = Family.increments ~family:S.chain [ 3; 4; 5 ] in
  Alcotest.(check int) "three steps" 3 (List.length incs);
  List.iter
    (fun (n, added) ->
      Alcotest.(check int) "one new requirement per step" 1 (List.length added);
      match added with
      | [ r ] ->
        Alcotest.(check string) "it is the forwarder's position"
          (Fmt.str "auth(pos(GPS_%d, pos), show(HMI_w, warn), D_w)" (n - 1))
          (Auth.to_string r)
      | _ -> Alcotest.fail "expected a single requirement")
    incs

let test_incrementally_uniform () =
  Alcotest.(check bool) "chain family is incrementally uniform" true
    (Family.incrementally_uniform ~family:S.chain [ 3; 4; 5; 6 ])

let test_selfsim_chain () =
  let r = Selfsim.check_chain ~range:[ 2; 3; 4 ] () in
  Alcotest.(check bool) "chain family self-similar" true r.Selfsim.self_similar;
  Alcotest.(check int) "three steps checked" 3 (List.length r.Selfsim.steps)

let test_selfsim_pairs () =
  let r = Selfsim.check_pairs ~range:[ 1; 2 ] () in
  Alcotest.(check bool) "pairs family self-similar" true r.Selfsim.self_similar

let test_selfsim_negative () =
  (* abstracting with the *wrong* homomorphism (hiding the warning hop
     entirely) must not be language-equivalent to the smaller chain *)
  let broken_hom n : Hom.t =
   fun a ->
    if Action.equal a (V.v_fwd n) then None (* fwd hidden, not renamed *)
    else Selfsim.chain_hom n a
  in
  let bigger = Lts.explore (V.chain 3) in
  let smaller = Lts.explore (V.chain 2) in
  Alcotest.(check bool) "broken abstraction detected" false
    (Selfsim.abstraction_equal ~bigger ~smaller ~hom:(broken_hom 2))

let test_abstraction_equal_reflexive () =
  let lts = Lts.explore (V.chain 2) in
  Alcotest.(check bool) "behaviour equal to itself under identity" true
    (Selfsim.abstraction_equal ~bigger:lts ~smaller:lts ~hom:Hom.identity)

let test_family_safety_verification () =
  (* the authenticity property "V1_sense precedes the warning leaving the
     receiver" verified for the whole chain family by induction *)
  let pattern =
    Fsa_mc.Pattern.make
      (Fsa_mc.Pattern.Precedence
         (Fsa_mc.Pattern.action_is (V.v_sense 1),
          Fsa_mc.Pattern.action_is (V.v_show 2)))
  in
  let fv =
    Selfsim.verify_uniform_safety ~family:V.chain ~hom_for:Selfsim.chain_hom
      ~base:2 ~range:[ 2; 3; 4 ] pattern
  in
  Alcotest.(check bool) "base case" true fv.Selfsim.fv_base;
  Alcotest.(check bool) "steps self-similar" true
    fv.Selfsim.fv_steps.Selfsim.self_similar;
  Alcotest.(check bool) "all abstract checks" true
    (List.for_all snd fv.Selfsim.fv_abstract_checks);
  Alcotest.(check bool) "family-level verdict" true fv.Selfsim.fv_holds;
  (* a false property fails at the base case *)
  let bogus =
    Fsa_mc.Pattern.make
      (Fsa_mc.Pattern.Precedence
         (Fsa_mc.Pattern.action_is (V.v_show 2),
          Fsa_mc.Pattern.action_is (V.v_sense 1)))
  in
  let fv' =
    Selfsim.verify_uniform_safety ~family:V.chain ~hom_for:Selfsim.chain_hom
      ~base:2 ~range:[ 2 ] bogus
  in
  Alcotest.(check bool) "false property rejected" false fv'.Selfsim.fv_holds;
  (* liveness patterns are rejected *)
  match
    Selfsim.verify_uniform_safety ~family:V.chain ~hom_for:Selfsim.chain_hom
      ~base:2 ~range:[ 2 ]
      (Fsa_mc.Pattern.make
         (Fsa_mc.Pattern.Existence (Fsa_mc.Pattern.action_is (V.v_show 2))))
  with
  | _ -> Alcotest.fail "liveness must be rejected"
  | exception Invalid_argument _ -> ()

let test_hom_to_base () =
  (* composing down from chain(4) to chain(2): V3_fwd maps via V3_show...
     no — hom_for 3 renames V3_fwd to V3_show, then hom_for 2 erases
     V3_show; V2_fwd maps to V2_show and survives *)
  let h = Selfsim.hom_to_base ~hom_for:Selfsim.chain_hom ~base:2 4 in
  Alcotest.(check bool) "V2_fwd becomes V2_show" true
    (h (V.v_fwd 2) = Some (V.v_show 2));
  Alcotest.(check bool) "V3 actions erased" true (h (V.v_pos 3) = None);
  Alcotest.(check bool) "V1 actions preserved" true
    (h (V.v_sense 1) = Some (V.v_sense 1));
  Alcotest.(check bool) "identity at base" true
    (Selfsim.hom_to_base ~hom_for:Selfsim.chain_hom ~base:2 2 (V.v_pos 1)
     = Some (V.v_pos 1))

let suite =
  [ Alcotest.test_case "chain schema uniform (Sect. 4.4)" `Quick test_chain_schema_uniform;
    Alcotest.test_case "schema mismatch detected" `Quick test_schema_mismatch_detected;
    Alcotest.test_case "increments" `Quick test_increments;
    Alcotest.test_case "incrementally uniform" `Quick test_incrementally_uniform;
    Alcotest.test_case "self-similarity: chain" `Quick test_selfsim_chain;
    Alcotest.test_case "self-similarity: pairs" `Quick test_selfsim_pairs;
    Alcotest.test_case "broken abstraction detected" `Quick test_selfsim_negative;
    Alcotest.test_case "identity abstraction" `Quick test_abstraction_equal_reflexive;
    Alcotest.test_case "family safety verification" `Quick test_family_safety_verification;
    Alcotest.test_case "hom composition to base" `Quick test_hom_to_base ]
