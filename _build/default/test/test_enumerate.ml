(* Tests for Fsa_model.Enumerate and the ideal-lattice correspondence of
   reachability graphs. *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Component = Fsa_model.Component
module Sos = Fsa_model.Sos
module Enumerate = Fsa_model.Enumerate
module Lts = Fsa_lts.Lts
module S = Fsa_vanet.Scenario
module V = Fsa_vanet.Vehicle_apa

(* ------------------------------------------------------------------ *)
(* Vehicle templates for enumeration                                   *)
(* ------------------------------------------------------------------ *)

let templates =
  [ Enumerate.template ~name:"rsu"
      ~build:(fun _ -> S.rsu_component)
      ~outputs:[ "send" ] ~inputs:[];
    Enumerate.template ~name:"warner"
      ~build:(fun i -> S.warning_vehicle (Agent.Concrete i))
      ~outputs:[ "send" ] ~inputs:[];
    Enumerate.template ~name:"forwarder"
      ~build:(fun i -> S.forwarding_vehicle (Agent.Concrete i))
      ~outputs:[ "fwd" ] ~inputs:[ "rec" ];
    Enumerate.template ~name:"receiver"
      ~build:(fun i -> S.receiving_vehicle (Agent.Concrete i))
      ~outputs:[] ~inputs:[ "rec" ] ]

let connectors = [ ("send", "rec"); ("fwd", "rec") ]

let test_size_one () =
  let instances =
    Enumerate.compositions ~templates ~connectors ~size:1 ()
  in
  (* each template alone, no links: four structurally different systems *)
  Alcotest.(check int) "four singletons" 4 (List.length instances)

let test_size_two () =
  let instances =
    Enumerate.compositions ~templates ~connectors ~size:2 ()
  in
  (* sender (rsu | warner | forwarder) x receiver (forwarder | receiver):
     six structurally different connected combinations — matching the
     hand-rolled enumeration in the scenario module *)
  Alcotest.(check int) "six pairs" 6 (List.length instances);
  List.iter
    (fun sos ->
      Alcotest.(check int) "exactly one link" 1 (List.length (Sos.links sos));
      match Sos.validate sos with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "enumerated instance must be valid")
    instances

let test_size_three_contains_fig4 () =
  let instances =
    Enumerate.compositions ~templates ~connectors ~size:3 ()
  in
  Alcotest.(check bool) "non-empty" true (instances <> []);
  (* the Fig. 4 shape — warner -> forwarder -> receiver — must be found *)
  let fig4 = S.chain_concrete 3 in
  Alcotest.(check bool) "Fig. 4 instance found" true
    (List.exists (Sos.isomorphic fig4) instances);
  (* all enumerated instances are pairwise non-isomorphic *)
  let rec pairwise = function
    | [] -> ()
    | x :: rest ->
      List.iter
        (fun y ->
          Alcotest.(check bool) "pairwise distinct" false (Sos.isomorphic x y))
        rest;
      pairwise rest
  in
  pairwise instances

let test_up_to () =
  let all = Enumerate.up_to ~templates ~connectors ~max_size:2 () in
  Alcotest.(check int) "sizes 1 and 2 together" 10 (List.length all)

let test_candidate_bound () =
  match
    Enumerate.compositions ~max_candidates:1 ~templates ~connectors ~size:3 ()
  with
  | _ -> Alcotest.fail "candidate bound must trigger"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Reachability graphs are ideal lattices                              *)
(* ------------------------------------------------------------------ *)

let test_states_are_ideals () =
  (* every state of an every-action-once behaviour is uniquely identified
     by its set of executed actions, and those sets are downward closed
     w.r.t. the functional dependencies *)
  let lts = Lts.explore (V.two_vehicles ()) in
  let n = Lts.nb_states lts in
  let executed = Array.make n None in
  executed.(Lts.initial lts) <- Some Action.Set.empty;
  let queue = Queue.create () in
  Queue.add (Lts.initial lts) queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let set = Option.get executed.(s) in
    List.iter
      (fun tr ->
        let set' = Action.Set.add tr.Lts.t_label set in
        match executed.(tr.Lts.t_dst) with
        | None ->
          executed.(tr.Lts.t_dst) <- Some set';
          Queue.add tr.Lts.t_dst queue
        | Some existing ->
          Alcotest.(check bool) "executed set independent of the path" true
            (Action.Set.equal existing set'))
      (Lts.succ lts s)
  done;
  (* all states labelled, all labels distinct *)
  let sets = Array.to_list executed |> List.filter_map Fun.id in
  Alcotest.(check int) "every state reached" n (List.length sets);
  Alcotest.(check int) "executed sets are unique" n
    (List.length (List.sort_uniq Action.Set.compare sets));
  (* downward closure w.r.t. the event dependencies *)
  let deps =
    [ (V.v_sense 1, V.v_send 1); (V.v_pos 1, V.v_send 1);
      (V.v_send 1, V.v_rec 2); (V.v_rec 2, V.v_show 2);
      (V.v_pos 2, V.v_show 2) ]
  in
  List.iter
    (fun set ->
      List.iter
        (fun (below, above) ->
          if Action.Set.mem above set then
            Alcotest.(check bool) "downward closed" true
              (Action.Set.mem below set))
        deps)
    sets

let suite =
  [ Alcotest.test_case "size one" `Quick test_size_one;
    Alcotest.test_case "size two (matches hand enumeration)" `Quick test_size_two;
    Alcotest.test_case "size three contains Fig. 4" `Quick test_size_three_contains_fig4;
    Alcotest.test_case "up_to" `Quick test_up_to;
    Alcotest.test_case "candidate bound" `Quick test_candidate_bound;
    Alcotest.test_case "states are order ideals" `Quick test_states_are_ideals ]
