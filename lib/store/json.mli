(** Minimal JSON values: parsing and deterministic printing.

    The store's cache entries and the server's request/response protocol
    are newline-delimited JSON; this module is the shared codec.  It is
    deliberately small — no streaming, no numbers beyond OCaml [int] and
    [float] — and deterministic: {!to_string} emits object members in
    the order they were constructed (or parsed), with no whitespace, so
    equal values print identically and printed values hash stably. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** member order is preserved *)

val equal : t -> t -> bool

val parse : string -> (t, string) result
(** Parse one JSON document; trailing whitespace is allowed, any other
    trailing input is an error.  Numbers without [.], [e] or [E] parse
    as [Int]. *)

val to_string : t -> string
(** Compact rendering (no whitespace), object member order preserved,
    strings escaped as in {!Fsa_obs.Metrics.json_escape}. *)

val to_buffer : Buffer.t -> t -> unit

(** {1 Accessors}

    Total accessors for picking requests apart: they return [None]
    rather than raising on shape mismatches. *)

val member : string -> t -> t option
(** [member k (Obj ..)] is the value bound to the first occurrence of
    [k]; [None] on missing members and non-objects. *)

val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
