test/test_model.ml: Alcotest Fsa_model Fsa_term Fsa_vanet List Printf String
