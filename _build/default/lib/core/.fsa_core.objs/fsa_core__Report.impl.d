lib/core/report.ml: Buffer Fmt Fsa_model Fsa_refine Fsa_requirements Fsa_term List String
