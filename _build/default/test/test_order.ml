(* Tests for Fsa_order: partial orders, chi, ideals, linear extensions. *)

module G = Fsa_graph.Digraph.Make (struct
  type t = string

  let compare = String.compare
  let pp = Fmt.string
end)

module P = Fsa_order.Poset.Make (G)

let sorted_pairs ps = List.sort compare ps

(* The event poset of the paper's two-vehicle scenario (Fig. 3 / Fig. 6):
   a = V1_sense, b = V1_pos, c = V1_send, d = V2_pos, e = V2_rec,
   f = V2_show. *)
let paper_poset () =
  P.of_relation_exn
    [ ("a", "c"); ("b", "c"); ("c", "e"); ("e", "f"); ("d", "f") ]

let test_cycle_rejected () =
  match P.of_relation [ ("a", "b"); ("b", "a") ] with
  | Ok _ -> Alcotest.fail "cyclic relation must be rejected"
  | Error (P.Cycle c) ->
    Alcotest.(check bool) "cycle reported" true (List.length c >= 2)

let test_leq_lt () =
  let p = paper_poset () in
  Alcotest.(check bool) "transitive lt" true (P.lt "a" "f" p);
  Alcotest.(check bool) "reflexive leq" true (P.leq "a" "a" p);
  Alcotest.(check bool) "not lt self" false (P.lt "a" "a" p);
  Alcotest.(check bool) "incomparable" false (P.comparable "a" "d" p);
  Alcotest.(check bool) "comparable" true (P.comparable "b" "e" p)

let test_minima_maxima () =
  let p = paper_poset () in
  Alcotest.(check (list string)) "minima" [ "a"; "b"; "d" ]
    (P.Eset.elements (P.minima p));
  Alcotest.(check (list string)) "maxima" [ "f" ] (P.Eset.elements (P.maxima p))

let test_chi () =
  let p = paper_poset () in
  Alcotest.(check (list (pair string string)))
    "chi = minima crossed with dependent maxima"
    [ ("a", "f"); ("b", "f"); ("d", "f") ]
    (sorted_pairs (P.chi p))

let test_chi_isolated () =
  let p = P.of_relation_exn ~elements:[ "x" ] [ ("a", "b") ] in
  Alcotest.(check (list (pair string string)))
    "isolated excluded by default"
    [ ("a", "b") ]
    (sorted_pairs (P.chi p));
  Alcotest.(check (list (pair string string)))
    "isolated included on demand"
    [ ("a", "b"); ("x", "x") ]
    (sorted_pairs (P.chi ~include_isolated:true p))

let test_closure_pairs () =
  let p = paper_poset () in
  (* 6 reflexive pairs + 10 strict pairs = 16, as in Example 3 *)
  Alcotest.(check int) "zeta* cardinality (Example 3)" 16
    (List.length (P.closure_pairs p))

let test_hasse () =
  let p = P.of_relation_exn [ ("a", "b"); ("b", "c"); ("a", "c") ] in
  let h = P.hasse p in
  Alcotest.(check bool) "redundant cover removed" false (G.mem_edge "a" "c" h);
  Alcotest.(check (list string)) "covers" [ "b" ]
    (P.Eset.elements (P.covers "a" p))

let test_downset_upset () =
  let p = paper_poset () in
  Alcotest.(check (list string)) "downset of e" [ "a"; "b"; "c"; "e" ]
    (P.Eset.elements (P.downset "e" p));
  Alcotest.(check (list string)) "upset of b" [ "b"; "c"; "e"; "f" ]
    (P.Eset.elements (P.upset "b" p))

let test_height_width () =
  let p = paper_poset () in
  Alcotest.(check int) "height (longest chain a<c<e<f)" 4 (P.height p);
  Alcotest.(check int) "width (antichain {a,b,d})" 3 (P.width p);
  let chain = P.of_relation_exn [ ("1", "2"); ("2", "3"); ("3", "4") ] in
  Alcotest.(check int) "chain height" 4 (P.height chain);
  Alcotest.(check int) "chain width" 1 (P.width chain);
  let anti = P.of_relation_exn ~elements:[ "x"; "y"; "z" ] [] in
  Alcotest.(check int) "antichain height" 1 (P.height anti);
  Alcotest.(check int) "antichain width" 3 (P.width anti)

let test_ideals_known_shapes () =
  (* chain of n elements: n+1 ideals; antichain of n elements: 2^n *)
  let chain = P.of_relation_exn [ ("1", "2"); ("2", "3") ] in
  Alcotest.(check int) "chain ideals" 4 (P.count_ideals chain);
  let anti = P.of_relation_exn ~elements:[ "x"; "y"; "z" ] [] in
  Alcotest.(check int) "antichain ideals" 8 (P.count_ideals anti)

let test_ideals_paper () =
  (* the published reachability graph sizes: 13 states for the
     two-vehicle event poset *)
  let p = paper_poset () in
  Alcotest.(check int) "two-vehicle scenario has 13 ideals (Fig. 7)" 13
    (P.count_ideals p)

let test_ideals_are_downsets () =
  let p = paper_poset () in
  List.iter
    (fun ideal ->
      List.iter
        (fun e ->
          P.Eset.iter
            (fun below ->
              if P.lt below e p then
                Alcotest.(check bool) "downward closed" true
                  (List.mem below ideal))
            (P.elements p))
        ideal)
    (P.ideals p)

let test_linear_extensions () =
  let chain = P.of_relation_exn [ ("1", "2"); ("2", "3") ] in
  Alcotest.(check int) "chain has single extension" 1
    (P.count_linear_extensions chain);
  let anti = P.of_relation_exn ~elements:[ "x"; "y"; "z" ] [] in
  Alcotest.(check int) "antichain has n! extensions" 6
    (P.count_linear_extensions anti);
  (* V-shape: a < c, b < c: extensions ab c and ba c -> 2 *)
  let v = P.of_relation_exn [ ("a", "c"); ("b", "c") ] in
  Alcotest.(check int) "V-shape" 2 (P.count_linear_extensions v)

let test_ideal_size_guard () =
  let elements = List.init 70 string_of_int in
  let p = P.of_relation_exn ~elements [] in
  match P.count_ideals p with
  | _ -> Alcotest.fail "must refuse > 62 elements"
  | exception Invalid_argument _ -> ()

(* Random DAG properties. *)
let gen_poset =
  let open QCheck2.Gen in
  let* n = int_range 1 8 in
  let* edges =
    list_size (int_bound (n * 2))
      (let* a = int_bound (n - 1) in
       let* b = int_bound (n - 1) in
       return (min a b, max a b))
  in
  let edges =
    List.filter (fun (a, b) -> a <> b) edges
    |> List.map (fun (a, b) -> (string_of_int a, string_of_int b))
  in
  return (P.of_relation_exn ~elements:(List.init n string_of_int) edges)

let prop_chi_subset =
  QCheck2.Test.make ~name:"chi pairs relate minima to maxima" ~count:200
    gen_poset (fun p ->
      List.for_all
        (fun (x, y) ->
          P.Eset.mem x (P.minima p) && P.Eset.mem y (P.maxima p) && P.lt x y p)
        (P.chi p))

let prop_ideals_bounds =
  QCheck2.Test.make ~name:"ideal count between n+1 and 2^n" ~count:200
    gen_poset (fun p ->
      let n = P.cardinal p in
      let c = P.count_ideals p in
      c >= n + 1 && c <= 1 lsl n)

let prop_extensions_positive =
  QCheck2.Test.make ~name:"every finite poset has a linear extension"
    ~count:200 gen_poset (fun p -> P.count_linear_extensions p >= 1)

let prop_height_width_bound =
  QCheck2.Test.make ~name:"height * width >= n (Mirsky/Dilworth)" ~count:200
    gen_poset (fun p -> P.height p * P.width p >= P.cardinal p)

let suite =
  [ Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
    Alcotest.test_case "leq/lt" `Quick test_leq_lt;
    Alcotest.test_case "minima/maxima" `Quick test_minima_maxima;
    Alcotest.test_case "chi" `Quick test_chi;
    Alcotest.test_case "chi isolated" `Quick test_chi_isolated;
    Alcotest.test_case "closure pairs (Example 3)" `Quick test_closure_pairs;
    Alcotest.test_case "hasse" `Quick test_hasse;
    Alcotest.test_case "downset/upset" `Quick test_downset_upset;
    Alcotest.test_case "height/width" `Quick test_height_width;
    Alcotest.test_case "ideals known shapes" `Quick test_ideals_known_shapes;
    Alcotest.test_case "ideals of the paper poset" `Quick test_ideals_paper;
    Alcotest.test_case "ideals are downsets" `Quick test_ideals_are_downsets;
    Alcotest.test_case "linear extensions" `Quick test_linear_extensions;
    Alcotest.test_case "ideal size guard" `Quick test_ideal_size_guard;
    QCheck_alcotest.to_alcotest prop_chi_subset;
    QCheck_alcotest.to_alcotest prop_ideals_bounds;
    QCheck_alcotest.to_alcotest prop_extensions_positive;
    QCheck_alcotest.to_alcotest prop_height_width_bound ]
