lib/refine/refine.mli: Fmt Fsa_model Fsa_requirements Fsa_term
