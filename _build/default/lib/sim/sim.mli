(** Interactive simulator for APA models, with optional runtime
    requirement monitoring.  UI-agnostic: commands in, strings out; the
    CLI front end drives it through {!parse_command}/{!execute}. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Auth = Fsa_requirements.Auth

type t

val create : ?seed:int -> Apa.t -> t
val state : t -> Apa.State.t
val apa : t -> Apa.t
val trace : t -> Action.t list
val steps_taken : t -> int

val attach_monitor : t -> Auth.t list -> unit
(** Attach requirement monitors; the existing trace is replayed. *)

val monitor_report : t -> string option

val enabled : t -> (string * Action.t * Apa.State.t) list
(** Enabled transitions as (rule name, label, successor), sorted. *)

val is_deadlocked : t -> bool

type step_error =
  | No_such_transition of string
  | Ambiguous of string * int
  | Deadlock

val pp_step_error : step_error Fmt.t

val step_named : t -> string -> (Action.t, step_error) result
val step_index : t -> int -> (Action.t, step_error) result
val step_random : t -> (Action.t, step_error) result

val run_random : t -> max_steps:int -> Action.t list
(** Random steps until deadlock or the bound; returns the executed
    suffix.  Deterministic for a given seed. *)

val undo : t -> bool
val reset : t -> unit

(** {1 Command language} *)

type command =
  | Show_state
  | Show_enabled
  | Show_trace
  | Step_name of string
  | Step_index of int
  | Step_random
  | Run_random of int
  | Undo
  | Reset
  | Monitor_report
  | Save_trace of string
  | Help
  | Quit

val parse_command : string -> (command, string) result
val help_text : string
val execute : t -> command -> [ `Output of string | `Quit ]

val script : t -> string list -> string list
(** Run a list of command lines, collecting the outputs; stops at
    [quit]. *)
