(** Content-addressed, on-disk cache of analysis results.

    Entries are keyed by a canonical digest of the elaborated model (see
    {!Fsa_spec.Elaborate.digest_of_spec}) combined with the analysis
    kind and its result-relevant parameters — never by file name,
    declaration order or exploration job count, so a spec re-parsed,
    re-ordered or explored in parallel hits the same entry.

    Entries are single JSON files written atomically (temp file in the
    cache directory + [rename]) and validated on read: a format-version
    mismatch, a checksum mismatch, a key mismatch or any parse failure
    makes {!find} report a miss, silently falling back to recomputation
    — a corrupt cache can cost time, never correctness.  The directory
    is bounded: after each {!add} the least-recently-used entries (by
    file mtime, which {!find} refreshes on every hit) are evicted until
    the total size is within budget.

    With observability enabled, the store records [store.hits],
    [store.misses] and [store.evictions]. *)

type t

val format_version : int
(** Bumped whenever the entry schema or the digest definition changes;
    entries written by other versions are ignored. *)

val default_dir : unit -> string
(** [$FSA_CACHE_DIR], else [$XDG_CACHE_HOME/fsa], else
    [$HOME/.cache/fsa], else [_fsa_cache] in the working directory. *)

val open_ : ?max_bytes:int -> dir:string -> unit -> t
(** Open (and create if needed) a cache directory.  [max_bytes]
    (default 64 MiB) bounds the total size of the stored entries.
    @raise Sys_error if the directory cannot be created. *)

val dir : t -> string

(** {1 Keys} *)

val digest_hex : string -> string
(** Hex digest of a string (the content-addressing primitive). *)

val cache_key :
  digest:string -> kind:string -> params:(string * string) list -> string
(** The entry key for analysis [kind] over a model with canonical
    [digest] under result-relevant [params] (sorted internally, so the
    caller's order is irrelevant). *)

(** {1 Entries} *)

type entry = {
  e_key : string;  (** the cache key the entry answers *)
  e_kind : string;  (** analysis kind, e.g. ["requirements"] *)
  e_result : Json.t;
      (** structured result: the reachability summary (state/transition
          counts, minima, maxima, deadlocks) and the derived requirement
          set, as produced by the executor *)
  e_output : string;  (** rendered human report, byte-identical replay *)
  e_exit : int;  (** exit code of the run that produced the entry *)
}

val find : t -> key:string -> entry option
(** Look the key up; validates version and checksum, refreshes the
    entry's LRU clock on a hit, and never raises — I/O errors and
    corrupt entries are misses. *)

val add : t -> entry -> unit
(** Write the entry atomically, then evict least-recently-used entries
    beyond the size budget.  Write failures are silently ignored (the
    cache is an optimisation, not a stateful dependency). *)

val occupancy : t -> int * int
(** [(entries, bytes)] currently on disk, by directory scan — the cache
    may be shared with other processes, so bookkeeping inside one
    process would lie.  [(0, 0)] when the directory is unreadable. *)

(**/**)

val entry_to_json : entry -> Json.t
(** The on-disk representation (checksum included), exposed for tests. *)
