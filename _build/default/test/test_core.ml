(* Tests for Fsa_core.Analysis: the two analysis paths and their
   cross-validation. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Auth = Fsa_requirements.Auth
module Analysis = Fsa_core.Analysis
module S = Fsa_vanet.Scenario
module V = Fsa_vanet.Vehicle_apa

let auth = Alcotest.testable Auth.pp Auth.equal

let test_manual_report () =
  let r = Analysis.manual S.two_vehicles in
  Alcotest.(check int) "3 requirements" 3 (List.length r.Analysis.m_requirements);
  Alcotest.(check int) "chi matches requirements" 3 (List.length r.Analysis.m_chi);
  Alcotest.(check int) "every requirement classified" 3
    (List.length r.Analysis.m_classified);
  Alcotest.(check int) "3 incoming boundary actions" 3
    (List.length r.Analysis.m_boundary.Fsa_model.Sos.incoming);
  Alcotest.(check int) "1 outgoing boundary action" 1
    (List.length r.Analysis.m_boundary.Fsa_model.Sos.outgoing)

let test_tool_report_two_vehicles () =
  let r = Analysis.tool ~stakeholder:V.stakeholder (V.two_vehicles ()) in
  Alcotest.(check int) "13 states" 13 r.Analysis.t_stats.Fsa_lts.Lts.nb_states;
  Alcotest.(check (list auth)) "Sect. 5.4 requirement set"
    [ Auth.make ~cause:(V.v_pos 1) ~effect:(V.v_show 2)
        ~stakeholder:(Agent.concrete "D" 2);
      Auth.make ~cause:(V.v_sense 1) ~effect:(V.v_show 2)
        ~stakeholder:(Agent.concrete "D" 2);
      Auth.make ~cause:(V.v_pos 2) ~effect:(V.v_show 2)
        ~stakeholder:(Agent.concrete "D" 2) ]
    r.Analysis.t_requirements

let test_tool_report_four_vehicles () =
  let r = Analysis.tool ~stakeholder:V.stakeholder (V.four_vehicles ()) in
  Alcotest.(check int) "169 states" 169 r.Analysis.t_stats.Fsa_lts.Lts.nb_states;
  Alcotest.(check int) "6 requirements (Sect. 5.5)" 6
    (List.length r.Analysis.t_requirements);
  (* the matrix covers all (max, min) combinations *)
  Alcotest.(check int) "2 maxima rows" 2 (List.length r.Analysis.t_matrix);
  List.iter
    (fun (_, row) -> Alcotest.(check int) "6 minima columns" 6 (List.length row))
    r.Analysis.t_matrix

let test_methods_agree () =
  List.iter
    (fun apa ->
      let direct =
        Analysis.tool ~meth:Analysis.Direct ~stakeholder:V.stakeholder apa
      in
      let abstract =
        Analysis.tool ~meth:Analysis.Abstract ~stakeholder:V.stakeholder apa
      in
      Alcotest.(check bool)
        (Fsa_apa.Apa.name apa ^ ": direct = abstract")
        true
        (Auth.equal_set direct.Analysis.t_requirements
           abstract.Analysis.t_requirements))
    [ V.two_vehicles (); V.four_vehicles (); V.chain 3; V.chain 4 ]

let test_crosscheck_agreement () =
  List.iter
    (fun (apa, sos) ->
      let tool = Analysis.tool ~stakeholder:V.stakeholder apa in
      let manual = Analysis.manual sos in
      let c =
        Analysis.crosscheck ~map:V.manual_action_of_label
          ~manual_requirements:manual.Analysis.m_requirements
          ~tool_requirements:tool.Analysis.t_requirements
      in
      Alcotest.(check bool) (Fsa_apa.Apa.name apa ^ " agrees") true c.Analysis.c_agree)
    [ (V.two_vehicles (), S.chain_concrete 2);
      (V.four_vehicles (), S.pairs_concrete 2);
      (V.chain 3, S.chain_concrete 3);
      (V.chain 5, S.chain_concrete 5) ]

let test_crosscheck_detects_differences () =
  let tool = Analysis.tool ~stakeholder:V.stakeholder (V.two_vehicles ()) in
  let manual = Analysis.manual (S.chain_concrete 2) in
  (* inject a spurious manual requirement *)
  let spurious =
    Auth.make
      ~cause:(Action.of_string_exn "pos(GPS_9, pos)")
      ~effect:(Action.of_string_exn "show(HMI_2, warn)")
      ~stakeholder:(Agent.concrete "D" 2)
  in
  let c =
    Analysis.crosscheck ~map:V.manual_action_of_label
      ~manual_requirements:(spurious :: manual.Analysis.m_requirements)
      ~tool_requirements:tool.Analysis.t_requirements
  in
  Alcotest.(check bool) "disagreement detected" false c.Analysis.c_agree;
  Alcotest.(check (list auth)) "manual-only requirement reported" [ spurious ]
    c.Analysis.c_manual_only;
  (* and a tool action without a manual image is reported *)
  let c2 =
    Analysis.crosscheck
      ~map:(fun _ -> None)
      ~manual_requirements:[]
      ~tool_requirements:tool.Analysis.t_requirements
  in
  Alcotest.(check bool) "unmapped actions detected" false c2.Analysis.c_agree;
  Alcotest.(check bool) "unmapped list non-empty" true (c2.Analysis.c_unmapped <> [])

let test_max_states_plumbing () =
  match
    Analysis.tool ~max_states:5 ~stakeholder:V.stakeholder (V.two_vehicles ())
  with
  | _ -> Alcotest.fail "bound must propagate"
  | exception Fsa_lts.Lts.State_space_too_large _ -> ()

let test_reports_render () =
  let manual = Analysis.manual S.three_vehicles in
  let text = Fmt.str "%a" Analysis.pp_manual_report manual in
  Alcotest.(check bool) "manual report mentions policy" true
    (let sub = "policy" in
     let rec contains i =
       i + String.length sub <= String.length text
       && (String.sub text i (String.length sub) = sub || contains (i + 1))
     in
     contains 0);
  let tool = Analysis.tool ~stakeholder:V.stakeholder (V.two_vehicles ()) in
  let text2 = Fmt.str "%a" Analysis.pp_tool_report tool in
  Alcotest.(check bool) "tool report mentions minima" true
    (let sub = "minima" in
     let rec contains i =
       i + String.length sub <= String.length text2
       && (String.sub text2 i (String.length sub) = sub || contains (i + 1))
     in
     contains 0)

let suite =
  [ Alcotest.test_case "manual report" `Quick test_manual_report;
    Alcotest.test_case "tool report (2 vehicles)" `Quick test_tool_report_two_vehicles;
    Alcotest.test_case "tool report (4 vehicles)" `Quick test_tool_report_four_vehicles;
    Alcotest.test_case "direct = abstract" `Quick test_methods_agree;
    Alcotest.test_case "crosscheck agreement" `Quick test_crosscheck_agreement;
    Alcotest.test_case "crosscheck detects differences" `Quick test_crosscheck_detects_differences;
    Alcotest.test_case "max_states plumbing" `Quick test_max_states_plumbing;
    Alcotest.test_case "reports render" `Quick test_reports_render ]
