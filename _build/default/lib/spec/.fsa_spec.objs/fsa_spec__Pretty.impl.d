lib/spec/pretty.ml: Ast Fmt Int List Option String
