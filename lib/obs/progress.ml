(* Exploration-progress reporting.

   A [Progress.t] throttles a user callback to at most one invocation per
   [every_n] items or per [every_ns] of wall time, whichever comes first.
   [tick] is designed to sit inside the state-space exploration loop: it
   reads the clock only once per [stride] items, so a quiet reporter costs
   a comparison per item.  Reporting is independent of [Metrics.enabled] —
   the caller opts in by passing a reporter. *)

type update = {
  u_count : int;
  u_frontier : int;
  u_elapsed_ns : int64;
  u_rate : float;  (* items per second since the first tick *)
  u_final : bool;
}

type t = {
  every_n : int;
  every_ns : int64;
  stride : int;
  callback : update -> unit;
  mutable started_ns : int64;
  mutable last_check_count : int;
  mutable last_fire_count : int;
  mutable last_fire_ns : int64;
  mutable fired : bool;
}

let create ?(every_n = 10_000) ?(every_ns = 500_000_000L) callback =
  if every_n <= 0 then invalid_arg "Progress.create: every_n must be positive";
  { every_n;
    every_ns;
    stride = max 1 (min every_n 256);
    callback;
    started_ns = -1L;
    last_check_count = 0;
    last_fire_count = 0;
    last_fire_ns = 0L;
    fired = false }

let rate ~count ~elapsed_ns =
  if Int64.compare elapsed_ns 0L <= 0 then 0.
  else float_of_int count /. (Int64.to_float elapsed_ns /. 1e9)

let fire p ~count ~frontier ~now ~final =
  let elapsed = Int64.sub now p.started_ns in
  p.last_fire_count <- count;
  p.last_fire_ns <- now;
  p.fired <- true;
  p.callback
    { u_count = count;
      u_frontier = frontier;
      u_elapsed_ns = elapsed;
      u_rate = rate ~count ~elapsed_ns:elapsed;
      u_final = final }

let tick p ~count ~frontier =
  if count - p.last_check_count >= p.stride then begin
    p.last_check_count <- count;
    let now = Span.now_ns () in
    if Int64.compare p.started_ns 0L < 0 then begin
      p.started_ns <- now;
      p.last_fire_ns <- now
    end;
    if
      count - p.last_fire_count >= p.every_n
      || Int64.compare (Int64.sub now p.last_fire_ns) p.every_ns >= 0
    then fire p ~count ~frontier ~now ~final:false
  end

(* The final report is only emitted when intermediate progress was shown:
   fast runs stay silent. *)
let finish p ~count =
  if p.fired then
    fire p ~count ~frontier:0 ~now:(Span.now_ns ()) ~final:true

let stderr_reporter ?every_n ?every_ns ~label () =
  create ?every_n ?every_ns (fun u ->
      if u.u_final then
        Fmt.epr "\r%s: %d states, %.0f states/s, done%s@." label u.u_count
          u.u_rate (String.make 12 ' ')
      else
        Fmt.epr "\r%s: %d states (frontier %d, %.0f states/s)%!" label
          u.u_count u.u_frontier u.u_rate)
