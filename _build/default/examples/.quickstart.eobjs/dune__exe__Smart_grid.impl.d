examples/smart_grid.ml: Fmt Fsa_core Fsa_grid Fsa_refine Fsa_requirements Fsa_term List
