lib/graph/matching.mli:
