lib/apa/apa.ml: Fmt Fsa_term Hashtbl List Map Printf String
