(* Export of requirement sets for downstream tooling.

   Requirements inspection, categorisation and prioritisation (the steps
   following elicitation in the paper's process) typically happen in
   external tools; this module renders requirement sets as JSON, CSV and
   Markdown.  The JSON writer is self-contained (no external dependency):
   the emitted structure is an array of objects with the requirement
   triple, its classification and prose. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent

(* ------------------------------------------------------------------ *)
(* Minimal JSON emission                                               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let json_object fields =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> json_string k ^ ": " ^ v) fields)
  ^ "}"

let json_array items = "[" ^ String.concat ", " items ^ "]"

(* ------------------------------------------------------------------ *)
(* Requirement export                                                  *)
(* ------------------------------------------------------------------ *)

let class_string = function
  | Classify.Safety_critical -> "safety-critical"
  | Classify.Policy_induced policies ->
    "policy-induced: " ^ String.concat ", " policies

let requirement_fields ?classification r =
  [ ("cause", json_string (Action.to_string (Auth.cause r)));
    ("effect", json_string (Action.to_string (Auth.effect r)));
    ("stakeholder", json_string (Agent.to_string (Auth.stakeholder r)));
    ("formal", json_string (Auth.to_string r));
    ("prose", json_string (Fmt.str "%a" Auth.pp_prose r)) ]
  @
  match classification with
  | None -> []
  | Some c -> [ ("classification", json_string (class_string c)) ]

let to_json ?classify reqs =
  let entry r =
    let classification = Option.map (fun f -> f r) classify in
    json_object (requirement_fields ?classification r)
  in
  json_array (List.map entry (Auth.normalise reqs))

(* CSV with a header row; fields are quoted, embedded quotes doubled. *)
let csv_quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_csv ?classify reqs =
  let header =
    "cause,effect,stakeholder"
    ^ (if classify = None then "" else ",classification")
    ^ "\n"
  in
  let row r =
    let base =
      String.concat ","
        [ csv_quote (Action.to_string (Auth.cause r));
          csv_quote (Action.to_string (Auth.effect r));
          csv_quote (Agent.to_string (Auth.stakeholder r)) ]
    in
    match classify with
    | None -> base
    | Some f -> base ^ "," ^ csv_quote (class_string (f r))
  in
  header ^ String.concat "\n" (List.map row (Auth.normalise reqs)) ^ "\n"

(* A Markdown table for documentation and reviews. *)
let to_markdown ?classify reqs =
  let buf = Buffer.create 512 in
  let has_class = classify <> None in
  Buffer.add_string buf
    (if has_class then
       "| # | Cause | Effect | Stakeholder | Classification |\n\
        |---|---|---|---|---|\n"
     else "| # | Cause | Effect | Stakeholder |\n|---|---|---|---|\n");
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf "| %d | %s | %s | %s |" (i + 1)
           (Action.to_string (Auth.cause r))
           (Action.to_string (Auth.effect r))
           (Agent.to_string (Auth.stakeholder r)));
      (match classify with
      | Some f -> Buffer.add_string buf (" " ^ class_string (f r) ^ " |")
      | None -> ());
      Buffer.add_char buf '\n')
    (Auth.normalise reqs);
  Buffer.contents buf

(* Atomic publish: write to a sibling temporary file, then rename into
   place, so a concurrent reader never observes a truncated export. *)
let write_file path content =
  let tmp =
    Filename.temp_file
      ~temp_dir:(Filename.dirname path)
      ("." ^ Filename.basename path ^ ".")
      ".tmp"
  in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc content)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
