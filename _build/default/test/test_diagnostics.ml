(* Tests for the diagnostic additions: complete-run counting, deadlock
   classification, finite-language operations. *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom
module V = Fsa_vanet.Vehicle_apa

(* ------------------------------------------------------------------ *)
(* Complete-run counting                                               *)
(* ------------------------------------------------------------------ *)

let test_run_counts () =
  (* linear extensions of the two-vehicle event poset: computed against
     the order library *)
  let module G = Fsa_graph.Digraph.Make (struct
    type t = string

    let compare = String.compare
    let pp = Fmt.string
  end) in
  let module P = Fsa_order.Poset.Make (G) in
  let poset =
    P.of_relation_exn
      [ ("V1_sense", "V1_send"); ("V1_pos", "V1_send");
        ("V1_send", "V2_rec"); ("V2_rec", "V2_show"); ("V2_pos", "V2_show") ]
  in
  let lts = Lts.explore (V.two_vehicles ()) in
  Alcotest.(check (option int)) "runs = linear extensions"
    (Some (P.count_linear_extensions poset))
    (Lts.count_complete_runs lts);
  (* four vehicles: the runs interleave two independent copies; the count
     is the number of interleavings: C(12,6) * runs_pair^2 *)
  let runs_pair = P.count_linear_extensions poset in
  let binom n k =
    let rec go acc i =
      if i > k then acc else go (acc * (n - i + 1) / i) (i + 1)
    in
    go 1 1
  in
  let lts4 = Lts.explore (V.four_vehicles ()) in
  Alcotest.(check (option int)) "four-vehicle interleavings"
    (Some (binom 12 6 * runs_pair * runs_pair))
    (Lts.count_complete_runs lts4)

let test_run_count_cyclic () =
  let ping_pong =
    Apa.make
      ~components:
        [ ("a", Term.Set.of_list [ Term.sym "t" ]); ("b", Term.Set.empty) ]
      ~rules:
        [ Apa.rule "ping" ~takes:[ Apa.take "a" (Term.var "x") ]
            ~puts:[ Apa.put "b" (Term.var "x") ];
          Apa.rule "pong" ~takes:[ Apa.take "b" (Term.var "x") ]
            ~puts:[ Apa.put "a" (Term.var "x") ] ]
      "ping_pong"
  in
  Alcotest.(check (option int)) "cyclic graphs have no finite count" None
    (Lts.count_complete_runs (Lts.explore ping_pong))

(* ------------------------------------------------------------------ *)
(* Deadlock classification                                             *)
(* ------------------------------------------------------------------ *)

let both_drivers_warned state =
  (not (Term.Set.is_empty (Apa.State.get "hmi2" state)))
  && not (Term.Set.is_empty (Apa.State.get "hmi4" state))

let test_clustered_deadlocks_complete () =
  let lts = Lts.explore (V.four_vehicles ()) in
  let report = Lts.classify_deadlocks lts ~complete:both_drivers_warned in
  Alcotest.(check int) "one complete deadlock" 1
    (List.length report.Lts.dr_complete);
  Alcotest.(check int) "no stuck deadlock with range clusters" 0
    (List.length report.Lts.dr_stuck)

let test_shared_net_has_stuck_deadlocks () =
  (* the flawed single-medium model: a receiver can consume the other
     pair's message and never display it *)
  let lts = Lts.explore (V.four_vehicles_shared_net ()) in
  let report = Lts.classify_deadlocks lts ~complete:both_drivers_warned in
  Alcotest.(check bool) "stuck deadlocks detected" true
    (report.Lts.dr_stuck <> []);
  (* diagnosis: in a stuck state some bus holds an unprocessable warning *)
  List.iter
    (fun s ->
      let state = Lts.state lts s in
      let some_bus_blocked =
        List.exists
          (fun i ->
            Term.Set.exists
              (fun t ->
                match t with
                | Term.App ("warn", _) -> true
                | Term.Sym _ | Term.Int _ | Term.Var _ | Term.App _ -> false)
              (Apa.State.get (Printf.sprintf "bus%d" i) state))
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check bool) "stuck state holds a blocked warning" true
        some_bus_blocked)
    report.Lts.dr_stuck

(* ------------------------------------------------------------------ *)
(* Finite-language operations                                          *)
(* ------------------------------------------------------------------ *)

module A = Fsa_automata.Automata.Make (struct
  type t = char

  let compare = Char.compare
  let pp = Fmt.char
end)

module IS = Fsa_automata.Automata.Int_set

let test_language_finiteness () =
  (* (ab)* is infinite *)
  let abstar =
    A.Dfa.create ~nb_states:2 ~start:0 ~finals:(IS.of_list [ 0 ])
      ~delta:[| A.Lmap.singleton 'a' 1; A.Lmap.singleton 'b' 0 |]
  in
  Alcotest.(check bool) "(ab)* infinite" false (A.Dfa.language_is_finite abstar);
  Alcotest.(check (option int)) "no count" None (A.Dfa.count_words abstar);
  (* a?b is finite with two words *)
  let opt_ab =
    A.Dfa.determinize
      (A.Nfa.create ~nb_states:3 ~start:(IS.of_list [ 0 ])
         ~finals:(IS.of_list [ 2 ])
         ~edges:[ (0, Some 'a', 1); (0, None, 1); (1, Some 'b', 2) ])
  in
  Alcotest.(check bool) "a?b finite" true (A.Dfa.language_is_finite opt_ab);
  Alcotest.(check (option int)) "two words" (Some 2) (A.Dfa.count_words opt_ab);
  (* a cycle outside the accepting region does not make the language
     infinite *)
  let dead_loop =
    A.Dfa.create ~nb_states:3 ~start:0 ~finals:(IS.of_list [ 1 ])
      ~delta:
        [| A.Lmap.of_seq (List.to_seq [ ('a', 1); ('b', 2) ]);
           A.Lmap.empty;
           A.Lmap.singleton 'b' 2 |]
  in
  Alcotest.(check bool) "unproductive cycle ignored" true
    (A.Dfa.language_is_finite dead_loop);
  Alcotest.(check (option int)) "single word" (Some 1)
    (A.Dfa.count_words dead_loop)

let test_count_matches_behaviour () =
  (* counting on the determinised behaviour automaton must agree with
     direct enumeration of the (finite, acyclic) prefix language *)
  let lts = Lts.explore (V.two_vehicles ()) in
  let dfa = Hom.A.Dfa.determinize (Hom.image_nfa Hom.identity lts) in
  Alcotest.(check (option int)) "word count = enumerated words"
    (Some (List.length (Lts.words ~max_len:6 lts)))
    (Hom.A.Dfa.count_words dfa)

let suite =
  [ Alcotest.test_case "complete-run counts" `Quick test_run_counts;
    Alcotest.test_case "cyclic run count" `Quick test_run_count_cyclic;
    Alcotest.test_case "clustered model completes" `Quick test_clustered_deadlocks_complete;
    Alcotest.test_case "shared net gets stuck" `Quick test_shared_net_has_stuck_deadlocks;
    Alcotest.test_case "language finiteness" `Quick test_language_finiteness;
    Alcotest.test_case "count matches behaviour" `Quick test_count_matches_behaviour ]
