lib/hom/hom.ml: Array Fmt Fsa_automata Fsa_lts Fsa_term Fun List Option Queue Set Stdlib
