(* Tests for Fsa_term: terms, agents, actions, substitutions, parsing. *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action

let term = Alcotest.testable Term.pp Term.equal
let agent = Alcotest.testable Agent.pp Agent.equal
let action = Alcotest.testable Action.pp Action.equal

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let test_term_construction () =
  Alcotest.check term "app with no args collapses to symbol" (Term.Sym "a")
    (Term.app "a" []);
  Alcotest.check term "app keeps args"
    (Term.App ("f", [ Term.Sym "a" ]))
    (Term.app "f" [ Term.sym "a" ])

let test_term_compare_total () =
  let terms =
    [ Term.sym "a"; Term.sym "b"; Term.int 1; Term.var "x";
      Term.app "f" [ Term.sym "a" ]; Term.app "f" [ Term.sym "b" ];
      Term.app "g" [ Term.sym "a"; Term.int 2 ] ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = Term.compare a b and ba = Term.compare b a in
          Alcotest.(check bool)
            "antisymmetry" true
            ((ab = 0 && ba = 0) || (ab < 0 && ba > 0) || (ab > 0 && ba < 0)))
        terms)
    terms

let test_term_vars () =
  let t = Term.app "f" [ Term.var "x"; Term.app "g" [ Term.var "y"; Term.sym "a" ] ] in
  Alcotest.(check (list string))
    "vars" [ "x"; "y" ]
    (Term.String_set.elements (Term.vars t));
  Alcotest.(check bool) "not ground" false (Term.is_ground t);
  Alcotest.(check bool) "ground" true (Term.is_ground (Term.sym "a"))

let test_term_size () =
  Alcotest.(check int) "size of leaf" 1 (Term.size (Term.sym "a"));
  Alcotest.(check int) "size of nested" 4
    (Term.size (Term.app "f" [ Term.sym "a"; Term.app "g" [ Term.int 1 ] ]))

let test_term_parse () =
  Alcotest.check term "symbol" (Term.sym "sW") (Term.of_string_exn "sW");
  Alcotest.check term "int" (Term.int 42) (Term.of_string_exn "42");
  Alcotest.check term "app"
    (Term.app "cam" [ Term.sym "pos1" ])
    (Term.of_string_exn "cam(pos1)");
  Alcotest.check term "nested"
    (Term.app "cam" [ Term.sym "V1"; Term.app "warn" [ Term.sym "pos2" ] ])
    (Term.of_string_exn "cam(V1, warn(pos2))");
  Alcotest.check term "variable via underscore" (Term.var "p")
    (Term.of_string_exn "_p")

let test_term_parse_errors () =
  let is_error s =
    match Term.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unbalanced" true (is_error "f(a");
  Alcotest.(check bool) "trailing" true (is_error "a b");
  Alcotest.(check bool) "empty args" true (is_error "f()");
  Alcotest.(check bool) "bad char" true (is_error "f(@)")

let test_subst_basics () =
  let s = Term.Subst.singleton "x" (Term.sym "a") in
  Alcotest.check term "apply binds"
    (Term.app "f" [ Term.sym "a"; Term.var "y" ])
    (Term.Subst.apply s (Term.app "f" [ Term.var "x"; Term.var "y" ]));
  (match Term.Subst.add "x" (Term.sym "b") s with
  | Some _ -> Alcotest.fail "conflicting add must be rejected"
  | None -> ());
  match Term.Subst.add "x" (Term.sym "a") s with
  | Some s' -> Alcotest.(check bool) "idempotent add" true (Term.Subst.find "x" s' = Some (Term.sym "a"))
  | None -> Alcotest.fail "consistent add must succeed"

let test_subst_merge () =
  let s1 = Term.Subst.singleton "x" (Term.sym "a") in
  let s2 = Term.Subst.singleton "y" (Term.sym "b") in
  (match Term.Subst.merge s1 s2 with
  | Some s ->
    Alcotest.check term "merged x" (Term.sym "a")
      (Term.Subst.apply s (Term.var "x"));
    Alcotest.check term "merged y" (Term.sym "b")
      (Term.Subst.apply s (Term.var "y"))
  | None -> Alcotest.fail "disjoint merge must succeed");
  let s3 = Term.Subst.singleton "x" (Term.sym "c") in
  match Term.Subst.merge s1 s3 with
  | Some _ -> Alcotest.fail "conflicting merge must fail"
  | None -> ()

let test_match () =
  let pattern = Term.app "cam" [ Term.var "v"; Term.var "p" ] in
  let target = Term.app "cam" [ Term.sym "V1"; Term.sym "pos1" ] in
  (match Term.match_ ~pattern ~target with
  | Some s ->
    Alcotest.check term "v" (Term.sym "V1") (Term.Subst.apply s (Term.var "v"));
    Alcotest.check term "p" (Term.sym "pos1") (Term.Subst.apply s (Term.var "p"))
  | None -> Alcotest.fail "must match");
  (* nonlinear pattern: both occurrences must agree *)
  let nonlinear = Term.app "f" [ Term.var "x"; Term.var "x" ] in
  Alcotest.(check bool) "nonlinear mismatch" true
    (Term.match_ ~pattern:nonlinear
       ~target:(Term.app "f" [ Term.sym "a"; Term.sym "b" ])
     = None);
  Alcotest.(check bool) "nonlinear match" true
    (Term.match_ ~pattern:nonlinear
       ~target:(Term.app "f" [ Term.sym "a"; Term.sym "a" ])
     <> None);
  Alcotest.(check bool) "no match on head" true
    (Term.match_ ~pattern:(Term.app "g" [ Term.var "x" ]) ~target:target = None)

let test_unify () =
  let x = Term.var "x" and y = Term.var "y" in
  (match Term.unify (Term.app "f" [ x; Term.sym "b" ]) (Term.app "f" [ Term.sym "a"; y ]) with
  | Some s ->
    Alcotest.check term "x=a" (Term.sym "a") (Term.Subst.apply s x);
    Alcotest.check term "y=b" (Term.sym "b") (Term.Subst.apply s y)
  | None -> Alcotest.fail "must unify");
  (* occurs check *)
  Alcotest.(check bool) "occurs check" true
    (Term.unify x (Term.app "f" [ x ]) = None);
  (* variable chains *)
  match Term.unify (Term.app "f" [ x; x ]) (Term.app "f" [ y; Term.sym "c" ]) with
  | Some s ->
    Alcotest.check term "x resolved" (Term.sym "c") (Term.Subst.apply s x);
    Alcotest.check term "y resolved" (Term.sym "c") (Term.Subst.apply s y)
  | None -> Alcotest.fail "chain must unify"

(* ------------------------------------------------------------------ *)
(* Agents                                                              *)
(* ------------------------------------------------------------------ *)

let test_agent_of_string () =
  Alcotest.check agent "concrete" (Agent.concrete "ESP" 1) (Agent.of_string "ESP_1");
  Alcotest.check agent "symbolic" (Agent.symbolic "GPS" "w") (Agent.of_string "GPS_w");
  Alcotest.check agent "unindexed" (Agent.unindexed "RSU") (Agent.of_string "RSU");
  Alcotest.check agent "multi-underscore role"
    (Agent.concrete "road_side" 2)
    (Agent.of_string "road_side_2");
  Alcotest.check agent "long suffix stays role"
    (Agent.unindexed "V_forward")
    (Agent.of_string "V_forward")

let test_agent_pp_roundtrip () =
  let agents =
    [ Agent.concrete "ESP" 3; Agent.symbolic "HMI" "w"; Agent.unindexed "RSU" ]
  in
  List.iter
    (fun a -> Alcotest.check agent "roundtrip" a (Agent.of_string (Agent.to_string a)))
    agents

let test_agent_reindex () =
  let a = Agent.concrete "GPS" 1 in
  Alcotest.check agent "reindex concrete"
    (Agent.concrete "GPS" 7)
    (Agent.reindex (fun _ -> Agent.Concrete 7) a);
  Alcotest.check agent "unindexed unchanged"
    (Agent.unindexed "RSU")
    (Agent.reindex (fun _ -> Agent.Concrete 7) (Agent.unindexed "RSU"))

(* ------------------------------------------------------------------ *)
(* Actions                                                             *)
(* ------------------------------------------------------------------ *)

let test_action_pp () =
  let a =
    Action.make ~actor:(Agent.concrete "ESP" 1) ~args:[ Term.sym "sW" ] "sense"
  in
  Alcotest.(check string) "paper notation" "sense(ESP_1, sW)" (Action.to_string a);
  let rsu = Action.make ~args:[ Term.app "cam" [ Term.sym "pos" ] ] "send" in
  Alcotest.(check string) "actor-less" "send(cam(pos))" (Action.to_string rsu);
  Alcotest.(check string) "bare" "tick" (Action.to_string (Action.make "tick"))

let test_action_parse () =
  Alcotest.check action "actor recognised"
    (Action.make ~actor:(Agent.concrete "ESP" 1) ~args:[ Term.sym "sW" ] "sense")
    (Action.of_string_exn "sense(ESP_1, sW)");
  Alcotest.check action "no actor"
    (Action.make ~args:[ Term.app "cam" [ Term.sym "pos" ] ] "send")
    (Action.of_string_exn "send(cam(pos))");
  Alcotest.check action "bare label" (Action.make "tick")
    (Action.of_string_exn "tick")

let test_action_roundtrip () =
  let actions =
    [ Action.of_string_exn "sense(ESP_1, sW)";
      Action.of_string_exn "show(HMI_w, warn)";
      Action.of_string_exn "send(cam(pos))";
      Action.of_string_exn "pos(GPS_2, pos)" ]
  in
  List.iter
    (fun a ->
      Alcotest.check action "roundtrip" a (Action.of_string_exn (Action.to_string a)))
    actions

let test_action_shape () =
  let a1 = Action.of_string_exn "pos(GPS_1, pos)" in
  let a2 = Action.of_string_exn "pos(GPS_2, pos)" in
  let b = Action.of_string_exn "pos(GPS_1, warn)" in
  Alcotest.(check int) "same family" 0
    (Action.compare_shape (Action.shape a1) (Action.shape a2));
  Alcotest.(check bool) "different args differ" true
    (Action.compare_shape (Action.shape a1) (Action.shape b) <> 0)

let test_action_tool_name () =
  let a = Action.of_string_exn "sense(ESP_1, sW)" in
  Alcotest.(check string) "from actor" "ESP_1_sense" (Action.tool_name a);
  Alcotest.(check string) "with system" "V1_sense"
    (Action.tool_name ~system:"V1" a)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_term =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [ map (fun s -> Term.sym ("s" ^ string_of_int s)) (int_bound 5);
        map Term.int (int_bound 100);
        map (fun v -> Term.var ("v" ^ string_of_int v)) (int_bound 3) ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 1 then leaf
         else
           oneof
             [ leaf;
               map2
                 (fun f args -> Term.app ("f" ^ string_of_int f) args)
                 (int_bound 3)
                 (list_size (int_range 1 3) (self (n / 4))) ])

let prop_parse_roundtrip =
  QCheck2.Test.make ~name:"term print/parse roundtrip" ~count:500 gen_term
    (fun t ->
      (* printed variables use ?v, parsed ones use _v; rename before print *)
      let printable =
        Term.map_vars (fun v -> Some (Term.sym ("VAR" ^ v))) t
      in
      Term.equal printable (Term.of_string_exn (Term.to_string printable)))

let prop_unify_sound =
  QCheck2.Test.make ~name:"unify produces a unifier" ~count:500
    (QCheck2.Gen.pair gen_term gen_term) (fun (a, b) ->
      match Term.unify a b with
      | None -> true
      | Some s -> Term.equal (Term.Subst.apply s a) (Term.Subst.apply s b))

let prop_match_sound =
  QCheck2.Test.make ~name:"match produces a matcher" ~count:500
    (QCheck2.Gen.pair gen_term gen_term) (fun (pattern, target) ->
      match Term.match_ ~pattern ~target with
      | None -> true
      | Some s -> Term.equal (Term.Subst.apply s pattern) target)

let prop_compare_reflexive =
  QCheck2.Test.make ~name:"compare is reflexive" ~count:200 gen_term (fun t ->
      Term.compare t t = 0)

let suite =
  [ Alcotest.test_case "term construction" `Quick test_term_construction;
    Alcotest.test_case "term compare total" `Quick test_term_compare_total;
    Alcotest.test_case "term vars" `Quick test_term_vars;
    Alcotest.test_case "term size" `Quick test_term_size;
    Alcotest.test_case "term parse" `Quick test_term_parse;
    Alcotest.test_case "term parse errors" `Quick test_term_parse_errors;
    Alcotest.test_case "subst basics" `Quick test_subst_basics;
    Alcotest.test_case "subst merge" `Quick test_subst_merge;
    Alcotest.test_case "match" `Quick test_match;
    Alcotest.test_case "unify" `Quick test_unify;
    Alcotest.test_case "agent of_string" `Quick test_agent_of_string;
    Alcotest.test_case "agent pp roundtrip" `Quick test_agent_pp_roundtrip;
    Alcotest.test_case "agent reindex" `Quick test_agent_reindex;
    Alcotest.test_case "action pp" `Quick test_action_pp;
    Alcotest.test_case "action parse" `Quick test_action_parse;
    Alcotest.test_case "action roundtrip" `Quick test_action_roundtrip;
    Alcotest.test_case "action shape" `Quick test_action_shape;
    Alcotest.test_case "action tool name" `Quick test_action_tool_name;
    QCheck_alcotest.to_alcotest prop_parse_roundtrip;
    QCheck_alcotest.to_alcotest prop_unify_sound;
    QCheck_alcotest.to_alcotest prop_match_sound;
    QCheck_alcotest.to_alcotest prop_compare_reflexive ]
