test/test_lts.ml: Alcotest Fmt Fsa_apa Fsa_graph Fsa_lts Fsa_order Fsa_term Fsa_vanet Lazy List String
