lib/sim/sim.ml: Fmt Fsa_apa Fsa_mc Fsa_requirements Fsa_term Fun List Option Printf String
