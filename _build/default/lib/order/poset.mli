(** Finite partial orders over the action set of a system instance.

    Implements the formalisation of Sect. 4.4 of the paper: the functional
    flow is a relation ζ on actions; its reflexive transitive closure ζ* is
    a partial order when the flow graph is loop-free; the restriction χ of
    ζ* to pairs of minimal and maximal elements yields the authenticity
    requirements.  Also provides order-theoretic analytics (height, width,
    order ideals, linear-extension counts) used to validate reachability
    graphs against the event poset of a scenario. *)

module Make (G : Fsa_graph.Digraph.S) : sig
  module Eset : Set.S with type elt = G.vertex and type t = G.Vset.t
  module Emap : Map.S with type key = G.vertex and type 'a t = 'a G.Vmap.t

  type element = G.vertex
  type t

  type error = Cycle of element list

  val pp_error : error Fmt.t

  val of_graph : G.t -> (t, error) result
  (** Interpret a digraph as the generating relation ζ; fails on cycles
      (every action represents a progress in time, Sect. 4.3). *)

  val of_relation :
    ?elements:element list -> (element * element) list -> (t, error) result

  val of_graph_exn : G.t -> t
  val of_relation_exn : ?elements:element list -> (element * element) list -> t

  val base : t -> G.t
  (** The generating relation ζ. *)

  val strict : t -> G.t
  (** The strict order (irreflexive transitive closure of ζ). *)

  val elements : t -> Eset.t
  val cardinal : t -> int

  val lt : element -> element -> t -> bool
  val leq : element -> element -> t -> bool
  val comparable : element -> element -> t -> bool

  val closure_pairs : t -> (element * element) list
  (** ζ* as an explicit, sorted list of pairs (reflexive pairs included) —
      the relation displayed in Example 3 of the paper. *)

  val minima : t -> Eset.t
  val maxima : t -> Eset.t

  val chi : ?include_isolated:bool -> t -> (element * element) list
  (** χ = ζ* restricted to minima × maxima.  With [include_isolated:true],
      elements that are both minimal and maximal contribute their reflexive
      pair. *)

  val hasse : t -> G.t
  val covers : element -> t -> Eset.t
  val downset : element -> t -> Eset.t
  val upset : element -> t -> Eset.t

  val height : t -> int
  (** Number of elements of a longest chain. *)

  val width : t -> int
  (** Size of a maximum antichain (Dilworth, via bipartite matching). *)

  val ideals : t -> element list list
  (** All order ideals (down-sets).  Supports up to 62 elements. *)

  val count_ideals : t -> int

  val count_linear_extensions : t -> int

  val pp : t Fmt.t
end
