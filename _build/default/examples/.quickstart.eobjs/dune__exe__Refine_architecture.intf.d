examples/refine_architecture.mli:
