lib/spec/parser.ml: Ast Fun Lexer List Loc String Token
