lib/spec/loc.ml: Fmt
