(* The operational APA model of the demand-response scenario — the
   tool-path counterpart of {!Scenario}.

   Unlike the vehicular model, this one exercises joins and fan-out:

   - the concentrator's [aggregate] consumes one reading per meter (an
     n-way join on the collect buffer);
   - the head-end's [ingest] produces two tokens (the aggregate for the
     decision and a copy for billing);
   - [dispatch] produces one command token per breaker (fan-out over the
     field network). *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa

let label name = Action.make name

let meter_id i = Term.sym (Printf.sprintf "M%d" i)
let breaker_id i = Term.sym (Printf.sprintf "B%d" i)

let var = Term.var
let reading m x = Term.app "reading" [ m; x ]
let cmd b = Term.app "cmd" [ b ]

(* One meter: measure the pending sample, then report it on the
   power-line carrier medium. *)
let meter i =
  Apa.make
    ~components:
      [ (Printf.sprintf "m_in%d" i,
         Term.Set.of_list [ Term.sym (Printf.sprintf "sample%d" i) ]);
        (Printf.sprintf "mbus%d" i, Term.Set.empty);
        ("plc", Term.Set.empty) ]
    ~rules:
      [ Apa.rule
          (Printf.sprintf "M%d_measure" i)
          ~takes:[ Apa.take (Printf.sprintf "m_in%d" i) (var "x") ]
          ~puts:[ Apa.put (Printf.sprintf "mbus%d" i) (var "x") ]
          ~label:(fun _ -> label (Printf.sprintf "M%d_measure" i));
        Apa.rule
          (Printf.sprintf "M%d_report" i)
          ~takes:[ Apa.take (Printf.sprintf "mbus%d" i) (var "x") ]
          ~puts:[ Apa.put "plc" (reading (meter_id i) (var "x")) ]
          ~label:(fun _ -> label (Printf.sprintf "M%d_report" i)) ]
    (Printf.sprintf "Meter%d" i)

(* The concentrator for [n] meters: collect each reading, aggregate all
   of them at once (n-way join), upload over the WAN. *)
let concentrator n =
  let collect =
    Apa.rule "C_collect"
      ~takes:[ Apa.take "plc" (reading (var "m") (var "x")) ]
      ~puts:[ Apa.put "cbuf" (reading (var "m") (var "x")) ]
      ~label:(fun _ -> label "C_collect")
  in
  let aggregate =
    let takes =
      List.init n (fun k ->
          Apa.take "cbuf" (reading (meter_id (k + 1)) (var (Printf.sprintf "x%d" (k + 1)))))
    in
    let agg =
      Term.app "agg" (List.init n (fun k -> var (Printf.sprintf "x%d" (k + 1))))
    in
    Apa.rule "C_aggregate" ~takes ~puts:[ Apa.put "cagg" agg ]
      ~label:(fun _ -> label "C_aggregate")
  in
  let upload =
    Apa.rule "C_upload"
      ~takes:[ Apa.take "cagg" (var "a") ]
      ~puts:[ Apa.put "wan" (var "a") ]
      ~label:(fun _ -> label "C_upload")
  in
  Apa.make
    ~components:
      [ ("plc", Term.Set.empty); ("cbuf", Term.Set.empty);
        ("cagg", Term.Set.empty); ("wan", Term.Set.empty) ]
    ~rules:[ collect; aggregate; upload ]
    "Concentrator"

let market =
  Apa.make
    ~components:
      [ ("mk_in", Term.Set.of_list [ Term.sym "price" ]);
        ("feed", Term.Set.empty) ]
    ~rules:
      [ Apa.rule "MK_quote"
          ~takes:[ Apa.take "mk_in" (var "p") ]
          ~puts:[ Apa.put "feed" (var "p") ]
          ~label:(fun _ -> label "MK_quote") ]
    "Market"

(* The head-end for [n] breakers: ingest duplicates the aggregate for the
   decision and for billing; dispatch fans a command out per breaker. *)
let head_end n =
  let ingest =
    Apa.rule "HE_ingest"
      ~takes:[ Apa.take "wan" (var "a") ]
      ~puts:[ Apa.put "hbus" (var "a"); Apa.put "billbuf" (var "a") ]
      ~label:(fun _ -> label "HE_ingest")
  in
  let price =
    Apa.rule "HE_price"
      ~takes:[ Apa.take "feed" (var "p") ]
      ~puts:[ Apa.put "hbus" (Term.app "price" [ var "p" ]) ]
      ~label:(fun _ -> label "HE_price")
  in
  let decide =
    Apa.rule "HE_decide"
      ~takes:
        [ Apa.take "hbus" (Term.app "agg" (List.init n (fun k -> var (Printf.sprintf "x%d" (k + 1)))));
          Apa.take "hbus" (Term.app "price" [ var "p" ]) ]
      ~puts:[ Apa.put "dbus" (Term.sym "plan") ]
      ~label:(fun _ -> label "HE_decide")
  in
  let dispatch =
    Apa.rule "HE_dispatch"
      ~takes:[ Apa.take "dbus" (var "d") ]
      ~puts:(List.init n (fun k -> Apa.put "fieldnet" (cmd (breaker_id (k + 1)))))
      ~label:(fun _ -> label "HE_dispatch")
  in
  let bill =
    Apa.rule "HE_bill"
      ~takes:[ Apa.take "billbuf" (var "a") ]
      ~puts:[ Apa.put "ledger" (Term.app "invoice" [ var "a" ]) ]
      ~label:(fun _ -> label "HE_bill")
  in
  Apa.make
    ~components:
      [ ("wan", Term.Set.empty); ("feed", Term.Set.empty);
        ("hbus", Term.Set.empty); ("billbuf", Term.Set.empty);
        ("dbus", Term.Set.empty); ("fieldnet", Term.Set.empty);
        ("ledger", Term.Set.empty) ]
    ~rules:[ ingest; price; decide; dispatch; bill ]
    "HeadEnd"

let breaker i =
  Apa.make
    ~components:
      [ ("fieldnet", Term.Set.empty);
        (Printf.sprintf "bbus%d" i, Term.Set.empty);
        (Printf.sprintf "bstate%d" i, Term.Set.empty) ]
    ~rules:
      [ Apa.rule
          (Printf.sprintf "B%d_command" i)
          ~takes:[ Apa.take "fieldnet" (cmd (breaker_id i)) ]
          ~puts:[ Apa.put (Printf.sprintf "bbus%d" i) (Term.sym "go") ]
          ~label:(fun _ -> label (Printf.sprintf "B%d_command" i));
        Apa.rule
          (Printf.sprintf "B%d_switch" i)
          ~takes:[ Apa.take (Printf.sprintf "bbus%d" i) (var "g") ]
          ~puts:[ Apa.put (Printf.sprintf "bstate%d" i) (Term.sym "off") ]
          ~label:(fun _ -> label (Printf.sprintf "B%d_switch" i)) ]
    (Printf.sprintf "Breaker%d" i)

(* The complete APA for [households] meter/breaker pairs. *)
let demand_response ?(households = 2) () =
  if households < 1 then invalid_arg "Grid_apa.demand_response";
  let hh = List.init households (fun k -> k + 1) in
  Apa.compose ~name:"grid_demand_response"
    (List.map meter hh
     @ [ concentrator households; market; head_end households ]
     @ List.map breaker hh)

(* Correspondence to the manual-path actions, for cross-validation. *)
let manual_action_of_label action =
  let s = Action.label action in
  match String.index_opt s '_' with
  | None -> None
  | Some i -> (
    let prefix = String.sub s 0 i in
    let verb = String.sub s (i + 1) (String.length s - i - 1) in
    let idx_of p =
      int_of_string_opt (String.sub p 1 (String.length p - 1))
    in
    match prefix, verb with
    | "C", "collect" -> Some Scenario.collect
    | "C", "aggregate" -> Some Scenario.aggregate
    | "C", "upload" -> Some Scenario.upload
    | "MK", "quote" -> Some Scenario.quote
    | "HE", "ingest" -> Some Scenario.ingest
    | "HE", "price" -> Some Scenario.price_in
    | "HE", "decide" -> Some Scenario.decide
    | "HE", "dispatch" -> Some Scenario.dispatch
    | "HE", "bill" -> Some Scenario.bill
    | p, "measure" when p.[0] = 'M' ->
      Option.map Scenario.measure (idx_of p)
    | p, "report" when p.[0] = 'M' -> Option.map Scenario.report (idx_of p)
    | p, "command" when p.[0] = 'B' -> Option.map Scenario.command (idx_of p)
    | p, "switch" when p.[0] = 'B' -> Option.map Scenario.switch (idx_of p)
    | _, _ -> None)

(* Tool-path stakeholders matching the manual assignment. *)
let stakeholder action =
  match manual_action_of_label action with
  | Some manual -> Scenario.stakeholder manual
  | None -> Fsa_term.Agent.unindexed "SYS"
