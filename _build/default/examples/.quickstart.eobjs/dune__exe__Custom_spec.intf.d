examples/custom_spec.mli:
