(** Position model for the vehicular scenario: concrete coordinates behind
    the paper's abstract positions pos1..pos4, making the
    [distance(msg, gps) < range] guard computable. *)

module Term = Fsa_term.Term

type coord = { x : int; y : int }

val table : (string * coord) list
val positions : Term.t list
val is_position : Term.t -> bool
val coord_of : Term.t -> coord option
val default_range : int
val distance : Term.t -> Term.t -> int option
val in_range : ?range:int -> Term.t -> Term.t -> bool
