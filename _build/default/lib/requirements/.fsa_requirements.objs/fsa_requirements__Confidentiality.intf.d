lib/requirements/confidentiality.mli: Fmt Fsa_model Fsa_term
