lib/spec/token.mli: Fmt
