examples/evita_audit.mli:
