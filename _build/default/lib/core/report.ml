(* A complete Markdown analysis report for a system of systems: model
   statistics, boundary actions, authenticity requirements with
   classification, confidentiality duals, and per-requirement refinement
   summaries.  One document a requirements review can work from. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Sos = Fsa_model.Sos
module Auth = Fsa_requirements.Auth
module Derive = Fsa_requirements.Derive
module Classify = Fsa_requirements.Classify
module Conf = Fsa_requirements.Confidentiality
module Export = Fsa_requirements.Export

type options = {
  with_confidentiality : bool;
  with_refinement : bool;
  stakeholder : Action.t -> Agent.t;
}

let default_options =
  { with_confidentiality = true;
    with_refinement = true;
    stakeholder = Derive.default_stakeholder }

let add buf fmt = Fmt.kstr (fun s -> Buffer.add_string buf s) fmt

let markdown ?(options = default_options) sos =
  let buf = Buffer.create 4096 in
  let stats = Sos.stats sos in
  let boundary = Sos.boundary sos in
  let reqs = Derive.of_sos ~stakeholder:options.stakeholder sos in

  add buf "# Functional security analysis: %s\n\n" (Sos.name sos);

  add buf "## Model\n\n";
  add buf "- components: %d\n- actions: %d\n- flows: %d\n" stats.Sos.nb_components
    stats.Sos.nb_actions stats.Sos.nb_flows;
  add buf "- component boundary actions: %d\n" stats.Sos.nb_component_boundary;
  add buf "- system boundary actions: %d (%d maximal, %d minimal)\n\n"
    stats.Sos.nb_system_boundary stats.Sos.nb_maximal stats.Sos.nb_minimal;

  add buf "### System inputs (minimal elements)\n\n";
  List.iter
    (fun a -> add buf "- `%s`\n" (Action.to_string a))
    boundary.Sos.incoming;
  add buf "\n### System outputs (maximal elements)\n\n";
  List.iter
    (fun a -> add buf "- `%s`\n" (Action.to_string a))
    boundary.Sos.outgoing;

  add buf "\n## Authenticity requirements (%d)\n\n" (List.length reqs);
  Buffer.add_string buf
    (Export.to_markdown ~classify:(Classify.classify sos) reqs);

  let policies = Classify.policies_of sos in
  if policies <> [] then begin
    add buf "\nPolicies present in the model: %s.\n"
      (String.concat ", " policies);
    let availability =
      List.filter
        (fun r ->
          not
            (Classify.equal_class (Classify.classify sos r)
               Classify.Safety_critical))
        reqs
    in
    add buf
      "%d requirement(s) exist only because of these policies and are \
       availability concerns rather than safety-critical.\n"
      (List.length availability)
  end;

  if options.with_confidentiality then begin
    add buf "\n## Confidentiality (forward information flow)\n\n";
    let levels = Conf.inferred_levels sos in
    add buf "| Output | Inferred level |\n|---|---|\n";
    List.iter
      (fun (a, l) ->
        add buf "| `%s` | %s |\n" (Action.to_string a)
          (Fmt.str "%a" Conf.pp_level l))
      levels
  end;

  add buf "\n## Prioritised work list\n\n";
  add buf "| Rank | Requirement | Class | Impact | Exposure | Reach | Score |\n";
  add buf "|---|---|---|---|---|---|---|\n";
  List.iteri
    (fun i s ->
      add buf "| %d | %s | %s | %d | %d | %d | %d |\n" (i + 1)
        (Auth.to_string s.Fsa_requirements.Prioritise.s_requirement)
        (Export.class_string s.Fsa_requirements.Prioritise.s_class)
        s.Fsa_requirements.Prioritise.s_impact
        s.Fsa_requirements.Prioritise.s_exposure
        s.Fsa_requirements.Prioritise.s_reach
        s.Fsa_requirements.Prioritise.s_score)
    (Fsa_requirements.Prioritise.rank sos reqs);

  if options.with_refinement then begin
    add buf "\n## Protection options per requirement\n\n";
    add buf "| Requirement | Paths | Attack surface | Min. cut |\n";
    add buf "|---|---|---|---|\n";
    List.iter
      (fun r ->
        let plan = Fsa_refine.Refine.plan sos r in
        add buf "| %s | %d | %d | %d |\n" (Auth.to_string r)
          (List.length plan.Fsa_refine.Refine.p_paths)
          (List.length plan.Fsa_refine.Refine.p_surface)
          (List.length plan.Fsa_refine.Refine.p_min_cut))
      reqs
  end;

  Buffer.contents buf
