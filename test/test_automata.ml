(* Tests for Fsa_automata: determinisation, minimisation, language ops. *)

module A = Fsa_automata.Automata.Make (struct
  type t = char

  let compare = Char.compare
  let pp = Fmt.char
end)

module IS = Fsa_automata.Automata.Int_set

let iset l = IS.of_list l

let words_t =
  Alcotest.testable
    (Fmt.Dump.list (Fmt.Dump.list Fmt.char))
    (List.equal (List.equal Char.equal))

(* DFA for (ab)* *)
let dfa_abstar () =
  A.Dfa.create ~nb_states:2 ~start:0 ~finals:(iset [ 0 ])
    ~delta:
      [| A.Lmap.singleton 'a' 1; A.Lmap.singleton 'b' 0 |]

(* NFA with an epsilon transition: accepts a? b *)
let nfa_opt_ab () =
  A.Nfa.create ~nb_states:3 ~start:(iset [ 0 ]) ~finals:(iset [ 2 ])
    ~edges:[ (0, Some 'a', 1); (0, None, 1); (1, Some 'b', 2) ]

let test_nfa_accepts () =
  let n = nfa_opt_ab () in
  Alcotest.(check bool) "ab" true (A.Nfa.accepts n [ 'a'; 'b' ]);
  Alcotest.(check bool) "b" true (A.Nfa.accepts n [ 'b' ]);
  Alcotest.(check bool) "a" false (A.Nfa.accepts n [ 'a' ]);
  Alcotest.(check bool) "empty" false (A.Nfa.accepts n [])

let test_eps_closure () =
  let n =
    A.Nfa.create ~nb_states:3 ~start:(iset [ 0 ]) ~finals:IS.empty
      ~edges:[ (0, None, 1); (1, None, 2) ]
  in
  Alcotest.(check int) "transitive epsilon closure" 3
    (IS.cardinal (A.Nfa.eps_closure n (iset [ 0 ])))

let test_determinize () =
  let d = A.Dfa.determinize (nfa_opt_ab ()) in
  Alcotest.(check bool) "ab" true (A.Dfa.accepts d [ 'a'; 'b' ]);
  Alcotest.(check bool) "b" true (A.Dfa.accepts d [ 'b' ]);
  Alcotest.(check bool) "a" false (A.Dfa.accepts d [ 'a' ]);
  Alcotest.(check bool) "aab" false (A.Dfa.accepts d [ 'a'; 'a'; 'b' ])

let test_determinize_preserves_words () =
  let n = nfa_opt_ab () in
  let d = A.Dfa.determinize n in
  let all_words =
    (* all words over {a,b} of length <= 3 *)
    let alpha = [ 'a'; 'b' ] in
    let extend ws = List.concat_map (fun w -> List.map (fun c -> c :: w) alpha) ws in
    let w1 = extend [ [] ] in
    let w2 = extend w1 in
    let w3 = extend w2 in
    [ [] ] @ w1 @ w2 @ w3
  in
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "agree on %s" (String.init (List.length w) (List.nth w)))
        (A.Nfa.accepts n w) (A.Dfa.accepts d w))
    all_words

let test_minimize_collapses () =
  (* two redundant accepting states accepting 'a' from start *)
  let d =
    A.Dfa.create ~nb_states:3 ~start:0 ~finals:(iset [ 1; 2 ])
      ~delta:
        [| A.Lmap.of_seq (List.to_seq [ ('a', 1); ('b', 2) ]);
           A.Lmap.empty; A.Lmap.empty |]
  in
  let m = A.Dfa.minimize d in
  Alcotest.(check int) "equivalent states merged" 2 (A.Dfa.nb_states m);
  Alcotest.(check bool) "language kept: a" true (A.Dfa.accepts m [ 'a' ]);
  Alcotest.(check bool) "language kept: b" true (A.Dfa.accepts m [ 'b' ])

let test_minimize_agrees_with_moore () =
  let d = A.Dfa.determinize (nfa_opt_ab ()) in
  let h = A.Dfa.minimize d and m = A.Dfa.minimize_moore d in
  Alcotest.(check int) "same state count" (A.Dfa.nb_states h) (A.Dfa.nb_states m);
  Alcotest.(check bool) "isomorphic" true (A.Dfa.isomorphic h m)

let test_trim () =
  (* state 2 unreachable; state 3 cannot reach a final state *)
  let d =
    A.Dfa.create ~nb_states:4 ~start:0 ~finals:(iset [ 1 ])
      ~delta:
        [| A.Lmap.of_seq (List.to_seq [ ('a', 1); ('b', 3) ]);
           A.Lmap.empty;
           A.Lmap.singleton 'a' 1;
           A.Lmap.empty |]
  in
  let t = A.Dfa.trim d in
  Alcotest.(check int) "trimmed to 2 states" 2 (A.Dfa.nb_states t);
  Alcotest.(check bool) "language kept" true (A.Dfa.accepts t [ 'a' ])

let test_trim_empty_language () =
  let d =
    A.Dfa.create ~nb_states:2 ~start:0 ~finals:IS.empty
      ~delta:[| A.Lmap.singleton 'a' 1; A.Lmap.empty |]
  in
  let t = A.Dfa.trim d in
  Alcotest.(check bool) "empty" true (A.Dfa.is_empty t)

let test_complete () =
  let d = dfa_abstar () in
  let c = A.Dfa.complete ~alphabet:(A.Lset.of_list [ 'a'; 'b' ]) d in
  Alcotest.(check int) "sink added" 3 (A.Dfa.nb_states c);
  Alcotest.(check bool) "language preserved" true
    (A.Dfa.language_equal d c)

let test_language_ops () =
  let d1 = dfa_abstar () in
  let d2 = A.Dfa.determinize (nfa_opt_ab ()) in
  Alcotest.(check bool) "abstar != a?b" false (A.Dfa.language_equal d1 d2);
  Alcotest.(check bool) "self equal" true (A.Dfa.language_equal d1 d1);
  let inter = A.Dfa.intersection d1 d2 in
  (* (ab)* and a?b intersect in... ab *)
  Alcotest.(check bool) "ab in both" true (A.Dfa.accepts inter [ 'a'; 'b' ]);
  Alcotest.(check bool) "b not in abstar" false (A.Dfa.accepts inter [ 'b' ]);
  let diff = A.Dfa.difference d2 d1 in
  Alcotest.(check bool) "b only in a?b" true (A.Dfa.accepts diff [ 'b' ]);
  Alcotest.(check bool) "ab removed" false (A.Dfa.accepts diff [ 'a'; 'b' ]);
  Alcotest.(check bool) "inter subset d1" true (A.Dfa.language_subset inter d1);
  let union = A.Dfa.union d1 d2 in
  Alcotest.(check bool) "union has abab" true
    (A.Dfa.accepts union [ 'a'; 'b'; 'a'; 'b' ]);
  Alcotest.(check bool) "union has b" true (A.Dfa.accepts union [ 'b' ])

let test_words () =
  let d = A.Dfa.determinize (nfa_opt_ab ()) in
  Alcotest.check words_t "accepted words up to length 2"
    [ [ 'a'; 'b' ]; [ 'b' ] ]
    (List.sort compare (A.Dfa.words ~max_len:2 d))

let test_isomorphic () =
  (* same shape, different state numbering *)
  let d1 =
    A.Dfa.create ~nb_states:2 ~start:0 ~finals:(iset [ 1 ])
      ~delta:[| A.Lmap.singleton 'a' 1; A.Lmap.empty |]
  in
  let d2 =
    A.Dfa.create ~nb_states:2 ~start:1 ~finals:(iset [ 0 ])
      ~delta:[| A.Lmap.empty; A.Lmap.singleton 'a' 0 |]
  in
  Alcotest.(check bool) "renumbered automata isomorphic" true
    (A.Dfa.isomorphic d1 d2);
  let d3 =
    A.Dfa.create ~nb_states:2 ~start:0 ~finals:(iset [ 1 ])
      ~delta:[| A.Lmap.singleton 'b' 1; A.Lmap.empty |]
  in
  Alcotest.(check bool) "different labels differ" false (A.Dfa.isomorphic d1 d3)

(* Random NFAs: determinisation and minimisation preserve the language. *)
let gen_nfa =
  let open QCheck2.Gen in
  let* n = int_range 1 6 in
  let* edges =
    list_size (int_bound 12)
      (let* s = int_bound (n - 1) in
       let* d = int_bound (n - 1) in
       let* l = oneofl [ Some 'a'; Some 'b'; None ] in
       return (s, l, d))
  in
  let* finals = list_size (int_range 1 n) (int_bound (n - 1)) in
  return
    (A.Nfa.create ~nb_states:n ~start:(iset [ 0 ]) ~finals:(iset finals)
       ~edges)

let all_short_words =
  let alpha = [ 'a'; 'b' ] in
  let extend ws = List.concat_map (fun w -> List.map (fun c -> c :: w) alpha) ws in
  let w1 = extend [ [] ] in
  let w2 = extend w1 in
  let w3 = extend w2 in
  let w4 = extend w3 in
  [ [] ] @ w1 @ w2 @ w3 @ w4

let prop_determinize_preserves =
  QCheck2.Test.make ~name:"determinize preserves acceptance" ~count:200 gen_nfa
    (fun n ->
      let d = A.Dfa.determinize n in
      List.for_all (fun w -> A.Nfa.accepts n w = A.Dfa.accepts d w) all_short_words)

let prop_minimize_preserves =
  QCheck2.Test.make ~name:"minimize preserves the language" ~count:200 gen_nfa
    (fun n ->
      let d = A.Dfa.determinize n in
      let m = A.Dfa.minimize d in
      List.for_all (fun w -> A.Dfa.accepts d w = A.Dfa.accepts m w) all_short_words)

let prop_minimize_minimal =
  QCheck2.Test.make ~name:"minimize is idempotent and not larger" ~count:200
    gen_nfa (fun n ->
      let d = A.Dfa.trim (A.Dfa.determinize n) in
      let m = A.Dfa.minimize d in
      A.Dfa.nb_states m <= max 1 (A.Dfa.nb_states d)
      && A.Dfa.isomorphic m (A.Dfa.minimize m))

let prop_hopcroft_equals_moore =
  QCheck2.Test.make ~name:"Hopcroft and Moore minimisation agree" ~count:200
    gen_nfa (fun n ->
      let d = A.Dfa.determinize n in
      A.Dfa.isomorphic (A.Dfa.minimize d) (A.Dfa.minimize_moore d))

(* The bitset projection agrees with the generic relabel/determinize
   chain under every alphabetic homomorphism over {a,b}: keep both,
   keep one and erase the other, rename, or erase both. *)
let prop_project_equals_relabel =
  let open QCheck2.Gen in
  let gen =
    let* n = gen_nfa in
    let* h_idx = int_bound 4 in
    return (n, h_idx)
  in
  let hom = function
    | 0 -> fun l -> Some l
    | 1 -> fun l -> if l = 'a' then Some 'a' else None
    | 2 -> fun l -> if l = 'b' then Some 'b' else None
    | 3 -> fun l -> Some (if l = 'a' then 'b' else 'a')
    | _ -> fun _ -> None
  in
  QCheck2.Test.make ~name:"project agrees with determinize . relabel"
    ~count:300 gen (fun (n, h_idx) ->
      let d = A.Dfa.determinize n in
      let h = hom h_idx in
      let generic = A.Dfa.minimize (A.Dfa.determinize (A.relabel h d)) in
      let fast = A.Dfa.minimize (A.project h d) in
      A.Dfa.isomorphic generic fast)

let suite =
  [ Alcotest.test_case "nfa accepts" `Quick test_nfa_accepts;
    Alcotest.test_case "eps closure" `Quick test_eps_closure;
    Alcotest.test_case "determinize" `Quick test_determinize;
    Alcotest.test_case "determinize words" `Quick test_determinize_preserves_words;
    Alcotest.test_case "minimize collapses" `Quick test_minimize_collapses;
    Alcotest.test_case "hopcroft = moore" `Quick test_minimize_agrees_with_moore;
    Alcotest.test_case "trim" `Quick test_trim;
    Alcotest.test_case "trim empty language" `Quick test_trim_empty_language;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "language ops" `Quick test_language_ops;
    Alcotest.test_case "words" `Quick test_words;
    Alcotest.test_case "isomorphic" `Quick test_isomorphic;
    QCheck_alcotest.to_alcotest prop_determinize_preserves;
    QCheck_alcotest.to_alcotest prop_minimize_preserves;
    QCheck_alcotest.to_alcotest prop_minimize_minimal;
    QCheck_alcotest.to_alcotest prop_hopcroft_equals_moore;
    QCheck_alcotest.to_alcotest prop_project_equals_relabel ]
