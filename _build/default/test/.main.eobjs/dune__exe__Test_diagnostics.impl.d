test/test_diagnostics.ml: Alcotest Char Fmt Fsa_apa Fsa_automata Fsa_graph Fsa_hom Fsa_lts Fsa_order Fsa_term Fsa_vanet List Printf String
