(* Batch and daemon serving layer.

   The interesting design point is [Exec]: one executor shared by the
   CLI subcommands, the batch runner and the daemon, so all three agree
   on what an analysis result *is* (a structured JSON value, the
   rendered human report and an exit code) and all three share the same
   content-addressed cache entries.  The cache replays the stored
   report string verbatim, which makes cached CLI output byte-identical
   to a fresh run by construction.

   The daemon pipes requests through a small pipeline:

     reader (select loop) -> work queue -> worker domains -> writer

   The reader polls with a short select timeout so a SIGTERM-driven
   [request_shutdown] is noticed promptly even with no input pending;
   on shutdown the queue is drained — every request already read gets
   its response before the loop returns.  Workers push results tagged
   with their request sequence number and the writer holds them in a
   reorder buffer, so responses always come out in request order no
   matter which worker finishes first. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Auth = Fsa_requirements.Auth
module Lts = Fsa_lts.Lts
module Hom = Fsa_hom.Hom
module Pattern = Fsa_mc.Pattern
module Analysis = Fsa_core.Analysis
module Elaborate = Fsa_spec.Elaborate
module Parser = Fsa_spec.Parser
module Loc = Fsa_spec.Loc
module Sos = Fsa_model.Sos
module Apa = Fsa_apa.Apa
module Report = Fsa_report.Report
module Json = Fsa_store.Json
module Store = Fsa_store.Store
module Metrics = Fsa_obs.Metrics
module Structural = Fsa_struct.Structural
module Flow = Fsa_flow.Flow
module Sym = Fsa_sym.Sym
module Span = Fsa_obs.Span
module Recorder = Fsa_obs.Recorder
module Progress = Fsa_obs.Progress

type config = {
  sv_workers : int;
  sv_max_states : int;
  sv_timeout_ms : int;
  sv_store : Store.t option;
  sv_stakeholder : Action.t -> Agent.t;
  sv_prune : bool;
  sv_flight_dir : string option;
  sv_slow_ms : float;
}

let config ?(workers = 1) ?(max_states = 1_000_000) ?(timeout_ms = 0) ?store
    ?(stakeholder = Fsa_requirements.Derive.default_stakeholder)
    ?(prune = false) ?flight_dir ?(slow_ms = 0.) () =
  { sv_workers = workers;
    sv_max_states = max_states;
    sv_timeout_ms = timeout_ms;
    sv_store = store;
    sv_stakeholder = stakeholder;
    sv_prune = prune;
    sv_flight_dir = flight_dir;
    sv_slow_ms = slow_ms }

exception Request_timeout
exception Usage_error of string

exception Too_large of int * string
(* [Lts.State_space_too_large], enriched with the structural growth hint
   (computed where the spec is still in scope) *)

let m_requests = Metrics.counter "server.requests"
let m_errors = Metrics.counter "server.errors"

let h_latency =
  Metrics.histogram
    ~buckets:[| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.;
                5000.; 10000. |]
    "server.latency_ms"

(* ------------------------------------------------------------------ *)
(* Shared executor                                                     *)
(* ------------------------------------------------------------------ *)

module Exec = struct
  type op = Reach | Requirements | Analyze | Abstract | Verify | Check | Report

  let op_to_string = function
    | Reach -> "reach"
    | Requirements -> "requirements"
    | Analyze -> "analyze"
    | Abstract -> "abstract"
    | Verify -> "verify"
    | Check -> "check"
    | Report -> "report"

  let op_of_string = function
    | "reach" -> Some Reach
    | "requirements" -> Some Requirements
    | "analyze" -> Some Analyze
    | "abstract" -> Some Abstract
    | "verify" -> Some Verify
    | "check" -> Some Check
    | "report" -> Some Report
    | _ -> None

  type outcome = {
    oc_result : Json.t;
    oc_output : string;
    oc_exit : int;
    oc_cached : bool;
  }

  let meth_string = function
    | Analysis.Direct -> "direct"
    | Analysis.Abstract -> "abstract"

  (* A cooperative timeout: exploration progress ticks double as
     deadline checks.  The final tick must not raise — [Progress.finish]
     runs inside the explorer's [Fun.protect ~finally], where a raise
     would surface as [Finally_raised] instead of the timeout. *)
  let deadline_progress deadline_ns =
    Progress.create ~every_n:256 ~every_ns:5_000_000L (fun u ->
        if
          (not u.Progress.u_final)
          && Int64.compare (Span.now_ns ()) deadline_ns > 0
        then raise Request_timeout)

  let explore_lts ~max_states ~jobs ~progress apa =
    if jobs > 1 then Lts.explore_par ~max_states ?progress ~jobs apa
    else Lts.explore ~max_states ?progress apa

  let actions_json set =
    Json.List
      (List.map
         (fun a -> Json.Str (Action.to_string a))
         (Action.Set.elements set))

  let summary_of_lts lts =
    let { Lts.nb_states; nb_transitions; nb_deadlocks; nb_labels } =
      Lts.stats lts
    in
    Json.Obj
      [ ("states", Json.Int nb_states);
        ("transitions", Json.Int nb_transitions);
        ("labels", Json.Int nb_labels);
        ( "deadlocks",
          Json.Obj
            [ ("count", Json.Int nb_deadlocks);
              ( "states",
                Json.List (List.map (fun i -> Json.Int i) (Lts.deadlocks lts))
              ) ] );
        ("minima", actions_json (Lts.minima lts));
        ("maxima", actions_json (Lts.maxima lts)) ]

  let requirements_json reqs =
    Json.List
      (List.map
         (fun r ->
           Json.Obj
             [ ("cause", Json.Str (Action.to_string (Auth.cause r)));
               ("effect", Json.Str (Action.to_string (Auth.effect r)));
               ( "stakeholder",
                 Json.Str (Agent.to_string (Auth.stakeholder r)) ) ])
         reqs)

  (* One reduction plan per request: guard signatures come from the
     spec's own syntax, so spec-driven symmetry detection needs no
     caller attestation. *)
  let reduce_plan ~reduce spec apa =
    match reduce with
    | None -> None
    | Some kind ->
      let sigs = Elaborate.guard_signatures spec in
      Some (Sym.plan ~guard_sig:(fun r -> List.assoc_opt r sigs) kind apa)

  let reduction_json (ri : Analysis.reduction_info) =
    Json.Obj
      [ ("kind", Json.Str ri.Analysis.ri_kind);
        ("reduced_states", Json.Int ri.Analysis.ri_reduced_states);
        ( "reduced_transitions",
          Json.Int ri.Analysis.ri_reduced_transitions );
        ("group_order", Json.Float ri.Analysis.ri_group_order);
        ( "fallback",
          match ri.Analysis.ri_fallback with
          | None -> Json.Null
          | Some s -> Json.Str s ) ]

  let run_reach ~max_states ~jobs ~progress ~reduce spec =
    let apa = Elaborate.apa_of_spec spec in
    match reduce_plan ~reduce spec apa with
    | None ->
      let lts = explore_lts ~max_states ~jobs ~progress apa in
      let output =
        Fmt.str "%a@.%a@." Lts.pp_stats (Lts.stats lts) Lts.pp_min_max lts
      in
      (summary_of_lts lts, output, 0)
    | Some pl ->
      let lts = Analysis.quotient ~max_states ~jobs ?progress pl apa in
      let order = Sym.group_order pl.Sym.pl_report in
      let output =
        Fmt.str "%a@.%a@.reduction: %s quotient (group order %.0f)@."
          Lts.pp_stats (Lts.stats lts) Lts.pp_min_max lts
          (Sym.kind_to_string pl.Sym.pl_kind)
          order
      in
      let summary =
        match summary_of_lts lts with
        | Json.Obj fields ->
          Json.Obj
            (fields
            @ [ ( "reduction",
                  Json.Obj
                    [ ( "kind",
                        Json.Str (Sym.kind_to_string pl.Sym.pl_kind) );
                      ("group_order", Json.Float order) ] ) ])
        | j -> j
      in
      (summary, output, 0)

  let ms_of_ns ns = Int64.to_float ns /. 1e6

  (* Exact interpolated quantile over a small sample (the histogram
     machinery in Fsa_obs is for streaming data; pair rows are a
     finished list). *)
  let quantile_of xs q =
    match List.sort Float.compare xs with
    | [] -> 0.
    | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      let pos = q *. float_of_int (n - 1) in
      let lo = max 0 (min (n - 1) (int_of_float (floor pos))) in
      let hi = max 0 (min (n - 1) (int_of_float (ceil pos))) in
      if lo = hi then a.(lo)
      else a.(lo) +. ((pos -. float_of_int lo) *. (a.(hi) -. a.(lo)))

  (* Per-pair timing quantiles.  Statically pruned pairs never ran any
     stage — their rows are all-zero placeholders — so they are
     excluded from the aggregation: counting them drags every quantile
     toward 0 and makes the dependence tests look cheaper than they
     are. *)
  let pair_quantiles pairs =
    let live = List.filter (fun p -> not p.Analysis.pt_pruned) pairs in
    let qobj xs =
      Json.Obj
        [ ("p50", Json.Float (quantile_of xs 0.5));
          ("p90", Json.Float (quantile_of xs 0.9));
          ("p99", Json.Float (quantile_of xs 0.99)) ]
    in
    let total p =
      ms_of_ns
        (Int64.add
           (Int64.add p.Analysis.pt_erase_ns p.Analysis.pt_determinise_ns)
           (Int64.add p.Analysis.pt_minimise_ns p.Analysis.pt_compare_ns))
    in
    Json.Obj
      [ ("tested", Json.Int (List.length live));
        ("pruned", Json.Int (List.length pairs - List.length live));
        ("total_ms", qobj (List.map total live));
        ( "compare_ms",
          qobj (List.map (fun p -> ms_of_ns p.Analysis.pt_compare_ns) live)
        ) ]

  let shared_json (s : Analysis.shared_timing) =
    Json.Obj
      [ ("alphabet", Json.Int s.Analysis.sh_alphabet_size);
        ("dfa_states", Json.Int s.Analysis.sh_dfa_states);
        ("cached", Json.Bool s.Analysis.sh_cached);
        ("early_pairs", Json.Int s.Analysis.sh_early_pairs);
        ("erase_ms", Json.Float (ms_of_ns s.Analysis.sh_erase_ns));
        ( "determinise_ms",
          Json.Float (ms_of_ns s.Analysis.sh_determinise_ns) );
        ("minimise_ms", Json.Float (ms_of_ns s.Analysis.sh_minimise_ns));
        ("early_ms", Json.Float (ms_of_ns s.Analysis.sh_early_ns)) ]

  (* Per-phase wall-clock breakdown of a tool run.  Cached entries
     replay the timings of the run that produced them — they describe
     the analysis, not the serving. *)
  let timings_json (t : Analysis.phase_timings) =
    Json.Obj
      ([ ("explore_ms", Json.Float (ms_of_ns t.Analysis.ph_explore_ns));
         ("min_max_ms", Json.Float (ms_of_ns t.Analysis.ph_min_max_ns));
         ("matrix_ms", Json.Float (ms_of_ns t.Analysis.ph_matrix_ns));
         ("derive_ms", Json.Float (ms_of_ns t.Analysis.ph_derive_ns));
         ( "pairs",
           Json.List
             (List.map
                (fun p ->
                  Json.Obj
                    [ ("min", Json.Str (Action.to_string p.Analysis.pt_min));
                      ("max", Json.Str (Action.to_string p.Analysis.pt_max));
                      ("pruned", Json.Bool p.Analysis.pt_pruned);
                      ( "pruned_by",
                        match p.Analysis.pt_pruned_by with
                        | Some by -> Json.Str by
                        | None -> Json.Null );
                      ( "erase_ms",
                        Json.Float (ms_of_ns p.Analysis.pt_erase_ns) );
                      ( "determinise_ms",
                        Json.Float (ms_of_ns p.Analysis.pt_determinise_ns) );
                      ( "minimise_ms",
                        Json.Float (ms_of_ns p.Analysis.pt_minimise_ns) );
                      ( "compare_ms",
                        Json.Float (ms_of_ns p.Analysis.pt_compare_ns) ) ])
                t.Analysis.ph_pairs) );
         ("pair_quantiles", pair_quantiles t.Analysis.ph_pairs) ]
      @
      match t.Analysis.ph_shared with
      | None -> []
      | Some s -> [ ("shared", shared_json s) ])

  (* ---- shared-quotient cache ------------------------------------ *)

  (* Version stamp of the shared abstraction engine.  Part of every
     abstract-method requirements key and of every quotient entry's
     key, so entries written by a different engine generation (or by
     the per-pair path) can never replay as shared-pass results. *)
  let abstraction_engine = "shared-v1"

  (* Which engine actually answers dependence queries — part of the
     requirements/report outcome keys and of the report settings. *)
  let engine_string ~meth ~shared =
    match meth with
    | Analysis.Direct -> "direct"
    | Analysis.Abstract -> if shared then abstraction_engine else "per-pair"

  module Int_set = Fsa_automata.Automata.Int_set

  let dfa_to_json dfa =
    let module D = Hom.A.Dfa in
    Json.Obj
      [ ("states", Json.Int (D.nb_states dfa));
        ("start", Json.Int (D.start dfa));
        ( "finals",
          Json.List
            (List.map
               (fun i -> Json.Int i)
               (Int_set.elements (D.finals dfa))) );
        ( "edges",
          Json.List
            (List.map
               (fun (s, l, d) ->
                 Json.List
                   [ Json.Int s; Json.Str (Action.to_string l); Json.Int d ])
               (D.transitions dfa)) ) ]

  (* Any malformed shape is [None] — a silent cache miss, matching the
     store's corruption contract. *)
  let dfa_of_json j =
    let module D = Hom.A.Dfa in
    match
      ( Option.bind (Json.member "states" j) Json.to_int,
        Option.bind (Json.member "start" j) Json.to_int,
        Json.member "finals" j,
        Json.member "edges" j )
    with
    | Some n, Some start, Some (Json.List finals), Some (Json.List edges)
      when n >= 0 && start >= 0 && start < n -> (
      try
        let fins =
          List.fold_left
            (fun acc v ->
              match Json.to_int v with
              | Some i when i >= 0 && i < n -> Int_set.add i acc
              | _ -> raise Exit)
            Int_set.empty finals
        in
        let delta = Array.make n Hom.A.Lmap.empty in
        List.iter
          (fun e ->
            match e with
            | Json.List [ Json.Int s; Json.Str l; Json.Int d ]
              when s >= 0 && s < n && d >= 0 && d < n -> (
              match Action.of_string l with
              | Ok a -> delta.(s) <- Hom.A.Lmap.add a d delta.(s)
              | Error _ -> raise Exit)
            | _ -> raise Exit)
          edges;
        Some (D.create ~nb_states:n ~start ~finals:fins ~delta)
      with Exit -> None)
    | _ -> None

  (* Only cache when every alphabet action survives the string round
     trip: an action [Action.of_string] cannot reconstruct exactly
     would deserialise into a different DFA. *)
  let alphabet_round_trips alphabet =
    List.for_all
      (fun a ->
        match Action.of_string (Action.to_string a) with
        | Ok a' -> Action.equal a a'
        | Error _ -> false)
      alphabet

  (* The shared quotient depends only on the APA part of the spec, the
     exploration bound, the effective reduction and the erased
     alphabet, so its key is exactly those plus the engine version. *)
  let quotient_cache st ~digest ~max_states ~reduce : Analysis.quotient_cache
      =
    let key ~alphabet =
      let params =
        [ ("engine", abstraction_engine);
          ("max_states", string_of_int max_states);
          ( "alphabet",
            Store.digest_hex
              (String.concat "\x00" (List.map Action.to_string alphabet)) )
        ]
        @
        match reduce with
        | None -> []
        | Some k -> [ ("reduce", Sym.kind_to_string k) ]
      in
      Store.cache_key ~digest ~kind:"quotient" ~params
    in
    { Analysis.qc_find =
        (fun ~alphabet ->
          if not (alphabet_round_trips alphabet) then None
          else
            match Store.find st ~key:(key ~alphabet) with
            | Some e -> dfa_of_json e.Store.e_result
            | None -> None);
      qc_store =
        (fun ~alphabet dfa ->
          if alphabet_round_trips alphabet then
            Store.add st
              { Store.e_key = key ~alphabet;
                e_kind = "quotient";
                e_result = dfa_to_json dfa;
                e_output = "";
                e_exit = 0 }) }

  (* ---- requirement reports -------------------------------------- *)

  let prune_string ~prune ~flow =
    match (prune, flow) with
    | false, false -> "none"
    | true, false -> "static"
    | false, true -> "flow"
    | true, true -> "static+flow"

  let report_settings ~meth ~shared ~reduce ~prune ~flow ~max_states =
    { Report.sg_path = "tool";
      sg_method = meth_string meth;
      sg_engine = engine_string ~meth ~shared;
      sg_reduce =
        (match reduce with None -> "none" | Some k -> Sym.kind_to_string k);
      sg_prune = prune_string ~prune ~flow;
      sg_max_states = max_states }

  (* One tool-path run plus its Fsa_report view.  The report digest
     covers APA *and* models: classification maps requirements onto the
     declared functional models, so a model edit must change it even
     when the APA part is untouched. *)
  let tool_report_of cfg ~meth ~max_states ~jobs ~prune ~flow ~progress
      ~reduce ~shared ?quotient_cache spec =
    let apa = Elaborate.apa_of_spec spec in
    (* the flow graph is rebuilt per request: it is cheap (no state
       space) and its attribution needs the located skeleton *)
    let flow_graph =
      if not flow then None
      else
        Some
          (Flow.build
             ~attribution:
               (Fsa_check.Check.flow_attribution
                  (Elaborate.skeleton_of_spec spec))
             apa)
    in
    let tr =
      Analysis.tool ~meth ~max_states ~jobs ~prune ?flow:flow_graph
        ?reduce:(reduce_plan ~reduce spec apa)
        ~shared ?quotient_cache ?progress ~stakeholder:cfg.sv_stakeholder apa
    in
    let rpt =
      Report.of_tool
        ~origins:(Report.origins_of_skeleton (Elaborate.skeleton_of_spec spec))
        ~soses:(Elaborate.sos_list spec)
        ~alphabet:(Apa.rule_names apa)
        ~digest:(Elaborate.digest_of_spec ~parts:[ `Apa; `Models ] spec)
        ~settings:
          (report_settings ~meth ~shared ~reduce ~prune ~flow ~max_states)
        tr
    in
    (tr, rpt)

  let run_requirements cfg ~meth ~max_states ~jobs ~prune ~flow ~progress
      ~reduce ~shared ?quotient_cache spec =
    let report, rpt =
      tool_report_of cfg ~meth ~max_states ~jobs ~prune ~flow ~progress
        ~reduce ~shared ?quotient_cache spec
    in
    let reduction =
      match report.Analysis.t_reduction with
      | None -> []
      | Some ri -> [ ("reduction", reduction_json ri) ]
    in
    let result =
      Json.Obj
        ([ ("summary", summary_of_lts report.Analysis.t_lts);
           ("requirements", requirements_json report.Analysis.t_requirements);
           ("timings", timings_json report.Analysis.t_timings);
           ("report", Report.to_json rpt) ]
        @ reduction)
    in
    (result, Fmt.str "%a@." Analysis.pp_tool_report report, 0)

  let soses_of ~sos spec =
    let soses =
      match sos with
      | Some name -> (
        try [ Elaborate.sos_of_spec spec name ]
        with Invalid_argument msg -> raise (Usage_error msg))
      | None -> Elaborate.sos_list spec
    in
    if soses = [] then
      raise (Usage_error "the specification declares no sos");
    soses

  (* The manual path keeps the paper's default stakeholder assignment
     (driver for HMI actions): [sv_stakeholder] parameterises only the
     tool path, mirroring the CLI. *)
  let run_analyze ~sos spec =
    let soses = soses_of ~sos spec in
    let digest = Elaborate.digest_of_spec ~parts:[ `Models ] spec in
    let reports = List.map (fun s -> (s, Analysis.manual s)) soses in
    let output =
      String.concat ""
        (List.map
           (fun (_, r) -> Fmt.str "%a@." Analysis.pp_manual_report r)
           reports)
    in
    let result =
      Json.Obj
        [ ( "soses",
            Json.List
              (List.map
                 (fun (s, r) ->
                   Json.Obj
                     [ ("name", Json.Str (Sos.name s));
                       ( "requirements",
                         requirements_json r.Analysis.m_requirements );
                       ( "report",
                         Report.to_json (Report.of_manual ~digest s r) ) ])
                 reports) ) ]
    in
    (result, output, 0)

  (* The report op renders the Fsa_report layer on its own: the tool
     path when the spec elaborates instances (or the manual path for an
     explicitly named sos), otherwise the manual path over the declared
     functional models, mirroring [run_analyze]'s selection. *)
  let run_report cfg ~meth ~max_states ~jobs ~prune ~flow ~progress ~reduce
      ~shared ~sos ?quotient_cache spec =
    let manual soses =
      let digest = Elaborate.digest_of_spec ~parts:[ `Models ] spec in
      List.map (fun s -> Report.of_manual ~digest s (Analysis.manual s)) soses
    in
    let reports =
      match sos with
      | Some _ -> manual (soses_of ~sos spec)
      | None ->
        if (Elaborate.env_of_spec spec).Elaborate.instances <> [] then
          let _, rpt =
            tool_report_of cfg ~meth ~max_states ~jobs ~prune ~flow ~progress
              ~reduce ~shared ?quotient_cache spec
          in
          [ rpt ]
        else manual (soses_of ~sos spec)
    in
    match reports with
    | [ r ] -> (Report.to_json r, Report.to_markdown r, 0)
    | rs ->
      ( Json.Obj [ ("reports", Json.List (List.map Report.to_json rs)) ],
        String.concat "\n" (List.map Report.to_markdown rs),
        0 )

  let run_abstract ~keep ~max_states ~jobs ~progress spec =
    let keep =
      match keep with
      | Some (_ :: _ as ks) -> ks
      | _ -> raise (Usage_error "abstract requires a non-empty keep set")
    in
    let apa = Elaborate.apa_of_spec spec in
    let lts = explore_lts ~max_states ~jobs ~progress apa in
    let actions = List.map Action.make keep in
    let h = Hom.preserve actions in
    let dfa = Hom.minimal_automaton h lts in
    let desc = Hom.describe_dfa dfa in
    let simple = Hom.is_simple h lts in
    let b = Buffer.create 256 in
    Buffer.add_string b (Fmt.str "minimal automaton: %s@." desc);
    Buffer.add_string b
      (Fmt.str "homomorphism simple on this behaviour: %b@." simple);
    let dependence =
      match actions with
      | [ mn; mx ] ->
        let d = Hom.depends_abstract lts ~min_action:mn ~max_action:mx in
        Buffer.add_string b
          (Fmt.str "functional dependence %a -> %a: %b@." Action.pp mn
             Action.pp mx d);
        Json.Bool d
      | _ -> Json.Null
    in
    let result =
      Json.Obj
        [ ("dfa", Json.Str desc);
          ("simple", Json.Bool simple);
          ("dependence", dependence) ]
    in
    (result, Buffer.contents b, 0)

  (* The POR-reduced graph is unsound for arbitrary properties, so
     verify honours only the symmetry half of a reduction request:
     [Sym_por] degrades to [Sym] and [Por] to no reduction.  The [Sym]
     path model-checks the exact full graph rebuilt by
     {!Analysis.unfolded} — identical verdicts, cheaper rule
     matching. *)
  let verify_reduce = function
    | Some Sym.Sym_por -> Some Sym.Sym
    | Some Sym.Por -> None
    | k -> k

  let run_verify ~max_states ~jobs ~progress ~reduce spec =
    let patterns = Elaborate.patterns_of_spec spec in
    if patterns = [] then
      raise (Usage_error "the specification declares no check");
    let apa = Elaborate.apa_of_spec spec in
    let lts, note =
      match reduce_plan ~reduce spec apa with
      | Some pl when Sym.canon_fn pl <> None -> (
        try
          let lts, _, _ = Analysis.unfolded ~max_states pl apa in
          (lts, "note: symmetry-guided exploration (exact graph)\n")
        with Sym.Unsupported reason ->
          ( explore_lts ~max_states ~jobs ~progress apa,
            Printf.sprintf "note: reduction fell back (%s)\n" reason ))
      | Some _ ->
        ( explore_lts ~max_states ~jobs ~progress apa,
          "note: no reducible symmetry; explored unreduced\n" )
      | None -> (explore_lts ~max_states ~jobs ~progress apa, "")
    in
    let results =
      List.map (fun (d, p) -> (d, Pattern.check lts p)) patterns
    in
    let failures =
      List.length
        (List.filter (fun (_, r) -> not r.Pattern.holds_) results)
    in
    let output =
      note
      ^ String.concat ""
          (List.map
             (fun (d, r) -> Fmt.str "%-50s %a@." d Pattern.pp_result r)
             results)
    in
    let result =
      Json.Obj
        [ ( "checks",
            Json.List
              (List.map
                 (fun (d, r) ->
                   Json.Obj
                     [ ("check", Json.Str d);
                       ("holds", Json.Bool r.Pattern.holds_) ])
                 results) );
          ("failed", Json.Int failures) ]
    in
    (result, output, if failures > 0 then 1 else 0)

  let run_check ~file spec =
    let module D = Fsa_check.Diagnostic in
    let ds = Fsa_check.Check.spec ~file spec in
    let rendered = D.render_json ds in
    let result =
      match Json.parse rendered with Ok j -> j | Error _ -> Json.Str rendered
    in
    (result, rendered, if D.has_errors ds then 1 else 0)

  let digest_parts = function
    | Reach | Abstract -> [ `Apa ]
    (* requirements and report outcomes embed an Fsa_report view whose
       classification maps onto the declared functional models, so both
       must miss when the models change even if the APA part did not *)
    | Requirements | Report -> [ `Apa; `Models ]
    | Verify -> [ `Apa; `Checks ]
    | Analyze -> [ `Models ]
    | Check -> [ `Apa; `Checks; `Models ]

  let run cfg ~op ?(meth = Analysis.Abstract) ?(max_states = 1_000_000)
      ?(jobs = 1) ?prune ?(flow = false) ?sos ?keep ?reduce ?(shared = true)
      ?progress ?deadline_ns ?(cache = true) ~file spec =
    let prune = Option.value prune ~default:cfg.sv_prune in
    (* the effective reduction is what runs AND what keys the cache:
       verify ignores the POR half (unsound for arbitrary properties),
       so a [por] verify request shares the unreduced entry *)
    let reduce = match op with Verify -> verify_reduce reduce | _ -> reduce in
    let progress =
      match (progress, deadline_ns) with
      | (Some _ as p), _ -> p
      | None, Some d -> Some (deadline_progress d)
      | None, None -> None
    in
    let compute () =
      (* the quotient cache shares the outcome store; a quotient entry
         is useful exactly when the outcome itself missed (different
         max_states, evicted outcome, …) *)
      let quotient_hook () =
        match (meth, if cache then cfg.sv_store else None) with
        | Analysis.Abstract, Some st when shared ->
          Some
            (quotient_cache st
               ~digest:(Elaborate.digest_of_spec ~parts:[ `Apa ] spec)
               ~max_states ~reduce)
        | _ -> None
      in
      try
        match op with
        | Reach -> run_reach ~max_states ~jobs ~progress ~reduce spec
        | Requirements ->
          run_requirements cfg ~meth ~max_states ~jobs ~prune ~flow ~progress
            ~reduce ~shared
            ?quotient_cache:(quotient_hook ())
            spec
        | Analyze -> run_analyze ~sos spec
        | Abstract -> run_abstract ~keep ~max_states ~jobs ~progress spec
        | Verify -> run_verify ~max_states ~jobs ~progress ~reduce spec
        | Check -> run_check ~file spec
        | Report ->
          run_report cfg ~meth ~max_states ~jobs ~prune ~flow ~progress
            ~reduce ~shared ~sos
            ?quotient_cache:(quotient_hook ())
            spec
      with Lts.State_space_too_large n ->
        (* enrich with the structural growth hint while the spec is still
           in scope; never let the hint computation mask the error *)
        let hint =
          try
            Structural.growth_hint
              (Fsa_check.Check.net_of_skeleton
                 (Elaborate.skeleton_of_spec spec))
          with _ -> ""
        in
        (* when the model carries unexploited symmetry, say so: the
           reduction is often the difference between blowing the bound
           and finishing (same guard: never mask the error) *)
        let hint =
          if reduce <> None then hint
          else
            hint
            ^
            try
              let apa = Elaborate.apa_of_spec spec in
              let sigs = Elaborate.guard_signatures spec in
              let rep =
                Sym.detect
                  ~guard_sig:(fun r -> List.assoc_opt r sigs)
                  apa
              in
              if
                List.exists
                  (fun o -> o.Sym.o_reducible)
                  rep.Sym.r_orbits
              then
                Printf.sprintf
                  "; symmetric instances detected (group order %.0f) — \
                   retry with --reduce sym+por, see `fsa sym`"
                  (Sym.group_order rep)
              else ""
            with _ -> ""
        in
        raise (Too_large (n, hint))
    in
    let fresh () =
      let result, output, exit_ = compute () in
      { oc_result = result; oc_output = output; oc_exit = exit_;
        oc_cached = false }
    in
    (* check is uncacheable: diagnostics carry source locations, which
       the location-free digest deliberately abstracts away *)
    let store = if cache && op <> Check then cfg.sv_store else None in
    match store with
    | None -> fresh ()
    | Some st -> (
      let digest = Elaborate.digest_of_spec ~parts:(digest_parts op) spec in
      (* [jobs] and [prune] are deliberately not part of the key: neither
         may change the result (pruning only skips pairs whose dependence
         is provably negative), so a cached unpruned outcome serves a
         pruned request and vice versa *)
      let params =
        let ms = ("max_states", string_of_int max_states) in
        (* [reduce] IS part of the key: reduced runs report quotient
           statistics and reduction metadata, so their outcomes are not
           interchangeable with unreduced ones (verify keys its
           post-downgrade effective reduction, which is) *)
        let rd =
          match reduce with
          | None -> []
          | Some k -> [ ("reduce", Sym.kind_to_string k) ]
        in
        (* [flow] IS part of the requirements/report keys, unlike
           [prune]: verdicts cannot change, but flow-pruned outcomes
           attribute pairs ("pruned_by", settings, coverage) that
           pre-flow entries — including any written before the member
           existed — do not carry, so the two must never replay for
           each other *)
        let fl = ("flow", if flow then "static-flow" else "none") in
        match op with
        | Reach -> ms :: rd
        | Requirements ->
          (* the engine param keys shared-pass outcomes away from
             per-pair (and pre-engine) ones: their timing sections
             differ even though verdicts are identical *)
          (ms :: rd)
          @ [ ("method", meth_string meth);
              ("engine", engine_string ~meth ~shared); fl ]
        | Report ->
          (ms :: rd)
          @ [ ("method", meth_string meth);
              ("engine", engine_string ~meth ~shared); fl ]
          @ (match sos with Some s -> [ ("sos", s) ] | None -> [])
        | Analyze -> (
          match sos with Some s -> [ ("sos", s) ] | None -> [])
        | Abstract ->
          [ ms; ("keep", String.concat "," (Option.value keep ~default:[])) ]
        | Verify -> ms :: rd
        | Check -> []
      in
      let key = Store.cache_key ~digest ~kind:(op_to_string op) ~params in
      match Store.find st ~key with
      | Some e ->
        { oc_result = e.Store.e_result;
          oc_output = e.Store.e_output;
          oc_exit = e.Store.e_exit;
          oc_cached = true }
      | None ->
        let o = fresh () in
        Store.add st
          { Store.e_key = key;
            e_kind = op_to_string op;
            e_result = o.oc_result;
            e_output = o.oc_output;
            e_exit = o.oc_exit };
        o)
end

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let error_of_exn = function
  | Request_timeout ->
    Some ("timeout", "request exceeded its wall-clock budget")
  | Lts.State_space_too_large n ->
    Some
      ( "too_large",
        Printf.sprintf "state space exceeds the bound of %d states" n )
  | Too_large (n, hint) ->
    Some
      ( "too_large",
        Printf.sprintf "state space exceeds the bound of %d states%s" n hint
      )
  | Usage_error msg -> Some ("bad_request", msg)
  | Invalid_argument msg -> Some ("bad_request", msg)
  | Loc.Error (loc, msg) ->
    Some ("parse_error", Fmt.str "%a" Loc.pp_exn (loc, msg))
  | Sys_error msg -> Some ("io_error", msg)
  | _ -> None

(* Every response echoes the request's trace id (generated when the
   request did not supply one), so clients can line responses up with
   flight-recorder dumps and trace trees. *)
let trace_seq = Atomic.make 0

let gen_trace_id () =
  Printf.sprintf "fsa-%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add trace_seq 1)

let error_response ~id ~trace_id kind message =
  Json.Obj
    [ ("id", id);
      ("trace_id", Json.Str trace_id);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [ ("kind", Json.Str kind); ("message", Json.Str message) ] ) ]

let ok_response ~id ~trace_id (o : Exec.outcome) =
  Json.Obj
    [ ("id", id);
      ("trace_id", Json.Str trace_id);
      ("ok", Json.Bool true);
      ("cached", Json.Bool o.Exec.oc_cached);
      ("exit", Json.Int o.Exec.oc_exit);
      ("result", o.Exec.oc_result) ]

(* ------------------------------------------------------------------ *)
(* Live introspection state                                            *)
(* ------------------------------------------------------------------ *)

(* One slot per worker domain, mutated by its owner and read (without a
   lock) by whichever worker serves a [stats] request: the fields are
   single words, so a racy read sees a slightly stale snapshot, which is
   exactly what a diagnostic endpoint promises anyway. *)
type slot = {
  mutable sl_domain : int;
  mutable sl_busy : bool;
  mutable sl_op : string;
  mutable sl_trace : string;
  mutable sl_since_ns : int64;
  mutable sl_handled : int;
}

let fresh_slot () =
  { sl_domain = 0;
    sl_busy = false;
    sl_op = "";
    sl_trace = "";
    sl_since_ns = 0L;
    sl_handled = 0 }

let slots : slot array Atomic.t = Atomic.make [||]
let slot_key = Domain.DLS.new_key (fun () -> -1)
let queue_depth = Atomic.make 0

let my_slot () =
  let i = Domain.DLS.get slot_key in
  let arr = Atomic.get slots in
  if i >= 0 && i < Array.length arr then Some arr.(i) else None

(* ------------------------------------------------------------------ *)
(* Flight dumps                                                        *)
(* ------------------------------------------------------------------ *)

let safe_filename s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '_')
    s

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Dump everything the recorder still holds about the request.  Failures
   are swallowed: the flight recorder must never turn a served error
   into an unserved one. *)
let flight_dump cfg ~trace_id =
  match cfg.sv_flight_dir with
  | None -> ()
  | Some dir -> (
    try
      mkdir_p dir;
      let path = Filename.concat dir (safe_filename trace_id ^ ".json") in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Recorder.dump_trace ~trace_id))
    with Sys_error _ | Unix.Unix_error _ -> ())

(* An error kind worth a flight dump: the request died inside the
   analysis, so the phase events around it are the evidence. *)
let dump_worthy = function
  | "timeout" | "too_large" | "internal" -> true
  | _ -> false

let req_str req k = Option.bind (Json.member k req) Json.to_str
let req_int req k = Option.bind (Json.member k req) Json.to_int
let req_bool req k = Option.bind (Json.member k req) Json.to_bool

(* [keep] accepts both a JSON list of names and a comma-separated
   string, matching the CLI's --keep. *)
let req_keep req =
  match Json.member "keep" req with
  | Some (Json.List vs) ->
    Some (List.filter_map Json.to_str vs)
  | Some (Json.Str s) ->
    Some (List.filter (( <> ) "") (String.split_on_char ',' s))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The stats op                                                        *)
(* ------------------------------------------------------------------ *)

(* A point-in-time snapshot of the server, computed entirely from state
   the process already maintains: the metrics registry (as Prometheus
   text plus interpolated latency quantiles), the work queue, the worker
   slots, the cache directory and the recorder ring. *)
let stats_json cfg =
  let now = Span.now_ns () in
  let quantiles =
    Json.Obj
      [ ("p50", Json.Float (Metrics.quantile h_latency 0.5));
        ("p90", Json.Float (Metrics.quantile h_latency 0.9));
        ("p99", Json.Float (Metrics.quantile h_latency 0.99));
        ("count", Json.Int (Metrics.histogram_count h_latency)) ]
  in
  let workers =
    Json.List
      (Array.to_list (Atomic.get slots)
      |> List.map (fun sl ->
             let base =
               [ ("domain", Json.Int sl.sl_domain);
                 ("busy", Json.Bool sl.sl_busy);
                 ("handled", Json.Int sl.sl_handled) ]
             in
             let busy =
               if sl.sl_busy then
                 [ ("op", Json.Str sl.sl_op);
                   ("trace_id", Json.Str sl.sl_trace);
                   ( "for_ms",
                     Json.Float
                       (Int64.to_float (Int64.sub now sl.sl_since_ns) /. 1e6)
                   ) ]
               else []
             in
             Json.Obj (base @ busy)))
  in
  let store =
    match cfg.sv_store with
    | None -> Json.Null
    | Some st ->
      let entries, bytes = Store.occupancy st in
      Json.Obj
        [ ("dir", Json.Str (Store.dir st));
          ("entries", Json.Int entries);
          ("bytes", Json.Int bytes) ]
  in
  let recorder =
    Json.Obj
      [ ("capacity", Json.Int (Recorder.capacity ()));
        ("size", Json.Int (Recorder.size ()));
        ("dropped", Json.Int (Recorder.dropped ())) ]
  in
  Json.Obj
    [ ("latency_ms", quantiles);
      ("queue_depth", Json.Int (Atomic.get queue_depth));
      ("workers", workers);
      ("store", store);
      ("recorder", recorder);
      ("prometheus", Json.Str (Metrics.to_prometheus ())) ]

let handle_request cfg ~trace_id req =
  let id = Option.value (Json.member "id" req) ~default:Json.Null in
  if req_str req "op" = Some "stats" then
    Json.Obj
      [ ("id", id);
        ("trace_id", Json.Str trace_id);
        ("ok", Json.Bool true);
        ("cached", Json.Bool false);
        ("exit", Json.Int 0);
        ("result", stats_json cfg) ]
  else
  try
    let op =
      match req_str req "op" with
      | None -> raise (Usage_error "missing or non-string \"op\"")
      | Some s -> (
        match Exec.op_of_string s with
        | Some op -> op
        | None -> raise (Usage_error (Printf.sprintf "unknown op %S" s)))
    in
    let file, spec =
      match (req_str req "source", req_str req "spec") with
      | Some src, _ -> ("<request>", Parser.parse_string src)
      | None, Some path -> (path, Parser.parse_file path)
      | None, None ->
        raise (Usage_error "missing \"source\" or \"spec\"")
    in
    let max_states =
      match req_int req "max_states" with
      | Some n when n > 0 -> min n cfg.sv_max_states
      | Some _ -> raise (Usage_error "\"max_states\" must be positive")
      | None -> cfg.sv_max_states
    in
    let timeout_ms =
      match req_int req "timeout_ms" with
      | Some t when t > 0 ->
        if cfg.sv_timeout_ms > 0 then min t cfg.sv_timeout_ms else t
      | Some _ -> raise (Usage_error "\"timeout_ms\" must be positive")
      | None -> cfg.sv_timeout_ms
    in
    let deadline_ns =
      if timeout_ms > 0 then
        Some
          (Int64.add (Span.now_ns ())
             (Int64.mul (Int64.of_int timeout_ms) 1_000_000L))
      else None
    in
    let meth =
      match req_str req "method" with
      | Some "direct" -> Analysis.Direct
      | Some "abstract" -> Analysis.Abstract
      | Some s ->
        raise
          (Usage_error
             (Printf.sprintf "unknown method %S (direct|abstract)" s))
      | None -> Analysis.Abstract
    in
    let reduce =
      match req_str req "reduce" with
      | None -> None
      | Some s -> (
        match Sym.kind_of_string s with
        | Some _ as k -> k
        | None ->
          raise
            (Usage_error
               (Printf.sprintf "unknown reduce %S (sym|por|sym+por)" s)))
    in
    let outcome =
      Exec.run cfg ~op ~meth ~max_states ?prune:(req_bool req "prune")
        ?flow:(req_bool req "flow") ?sos:(req_str req "sos")
        ?keep:(req_keep req) ?reduce
        ?shared:(req_bool req "shared") ?deadline_ns
        ~cache:(Option.value (req_bool req "cache") ~default:true)
        ~file spec
    in
    ok_response ~id ~trace_id outcome
  with e ->
    Metrics.incr m_errors;
    let kind, message =
      match error_of_exn e with
      | Some km -> km
      | None -> ("internal", Printexc.to_string e)
    in
    Recorder.record Recorder.Error (kind ^ ": " ^ message);
    if dump_worthy kind then flight_dump cfg ~trace_id;
    error_response ~id ~trace_id kind message

let handle_line ?(seq = -1) cfg line =
  Metrics.incr m_requests;
  let t0 = Span.now_ns () in
  let parsed = Json.parse line in
  let trace_id =
    match parsed with
    | Ok req -> (
      match req_str req "trace_id" with
      | Some t when t <> "" -> t
      | _ -> gen_trace_id ())
    | Error _ -> gen_trace_id ()
  in
  Span.with_trace ~trace_id @@ fun () ->
  Recorder.record Recorder.Dequeue
    (if seq >= 0 then Printf.sprintf "seq=%d" seq else "request");
  let op_name =
    match parsed with
    | Ok req -> Option.value (req_str req "op") ~default:"?"
    | Error _ -> "?"
  in
  let slot = my_slot () in
  Option.iter
    (fun sl ->
      sl.sl_busy <- true;
      sl.sl_op <- op_name;
      sl.sl_trace <- trace_id;
      sl.sl_since_ns <- t0)
    slot;
  let resp =
    Span.with_ ~cat:"server" "server.request" @@ fun () ->
    match parsed with
    | Error msg ->
      Metrics.incr m_errors;
      Recorder.record Recorder.Error ("parse_error: " ^ msg);
      error_response ~id:Json.Null ~trace_id "parse_error" msg
    | Ok req -> handle_request cfg ~trace_id req
  in
  let ms = Int64.to_float (Int64.sub (Span.now_ns ()) t0) /. 1e6 in
  Metrics.observe h_latency ms;
  if cfg.sv_slow_ms > 0. && ms > cfg.sv_slow_ms then begin
    Recorder.record Recorder.Slow (Printf.sprintf "%s %.1fms" op_name ms);
    Logs.warn (fun m ->
        m "slow request: op=%s trace=%s %.1f ms (threshold %.1f ms)" op_name
          trace_id ms cfg.sv_slow_ms)
  end;
  Option.iter
    (fun sl ->
      sl.sl_busy <- false;
      sl.sl_handled <- sl.sl_handled + 1)
    slot;
  Json.to_string resp

(* ------------------------------------------------------------------ *)
(* Serving                                                             *)
(* ------------------------------------------------------------------ *)

(* A minimal multi-domain channel; [None] is the poison pill. *)
module Chan = struct
  type 'a t = { q : 'a Queue.t; m : Mutex.t; c : Condition.t }

  let make () =
    { q = Queue.create (); m = Mutex.create (); c = Condition.create () }

  let push t v =
    Mutex.protect t.m (fun () ->
        Queue.push v t.q;
        Condition.signal t.c)

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.c t.m
    done;
    let v = Queue.pop t.q in
    Mutex.unlock t.m;
    v
end

let shutdown_flag = Atomic.make false
let request_shutdown () = Atomic.set shutdown_flag true

let serve_loop cfg ~fd_in oc =
  let work : (int * string) option Chan.t = Chan.make () in
  let results : (int * string) option Chan.t = Chan.make () in
  let nworkers = max 1 cfg.sv_workers in
  Atomic.set slots (Array.init nworkers (fun _ -> fresh_slot ()));
  Atomic.set queue_depth 0;
  let workers =
    Array.init nworkers (fun w ->
        Domain.spawn (fun () ->
            Domain.DLS.set slot_key w;
            Option.iter
              (fun sl -> sl.sl_domain <- (Domain.self () :> int))
              (my_slot ());
            let rec loop () =
              match Chan.pop work with
              | None -> ()
              | Some (seq, line) ->
                ignore (Atomic.fetch_and_add queue_depth (-1));
                Chan.push results (Some (seq, handle_line ~seq cfg line));
                loop ()
            in
            loop ()))
  in
  (* Responses leave in request order: the writer parks out-of-order
     results until their predecessors have been written. *)
  let writer =
    Domain.spawn (fun () ->
        let pending = Hashtbl.create 16 in
        let next = ref 0 in
        let rec flush_ready () =
          match Hashtbl.find_opt pending !next with
          | Some resp ->
            Hashtbl.remove pending !next;
            output_string oc resp;
            output_char oc '\n';
            flush oc;
            incr next;
            flush_ready ()
          | None -> ()
        in
        let rec loop () =
          match Chan.pop results with
          | None -> ()
          | Some (seq, resp) ->
            Hashtbl.replace pending seq resp;
            flush_ready ();
            loop ()
        in
        loop ())
  in
  let seq = ref 0 in
  let submit line =
    if String.trim line <> "" then begin
      Recorder.record Recorder.Enqueue (Printf.sprintf "seq=%d" !seq);
      ignore (Atomic.fetch_and_add queue_depth 1);
      Chan.push work (Some (!seq, line));
      incr seq
    end
  in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec split_lines () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | None -> ()
    | Some i ->
      Buffer.clear buf;
      Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
      submit (String.sub s 0 i);
      split_lines ()
  in
  (* Short select timeouts keep the loop responsive to
     [request_shutdown] even when no input is pending. *)
  let rec read_loop () =
    if not (Atomic.get shutdown_flag) then
      match Unix.select [ fd_in ] [] [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_loop ()
      | [], _, _ -> read_loop ()
      | _ -> (
        match Unix.read fd_in chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_loop ()
        | 0 -> if Buffer.length buf > 0 then submit (Buffer.contents buf)
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          split_lines ();
          read_loop ())
  in
  read_loop ();
  (* graceful drain: poison the workers, wait for every accepted
     request's response, then stop the writer *)
  for _ = 1 to nworkers do
    Chan.push work None
  done;
  Array.iter Domain.join workers;
  Chan.push results None;
  Domain.join writer

let serve_channels cfg ~fd_in oc =
  Atomic.set shutdown_flag false;
  serve_loop cfg ~fd_in oc

let serve_unix_socket cfg ~path =
  Atomic.set shutdown_flag false;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (try Sys.remove path with Sys_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  let rec accept_loop () =
    if not (Atomic.get shutdown_flag) then
      match Unix.select [ sock ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | [], _, _ -> accept_loop ()
      | _ ->
        let client, _ = Unix.accept sock in
        let oc = Unix.out_channel_of_descr client in
        Fun.protect
          ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
          (fun () -> serve_loop cfg ~fd_in:client oc);
        accept_loop ()
  in
  accept_loop ()

(* ------------------------------------------------------------------ *)
(* Batch runs                                                          *)
(* ------------------------------------------------------------------ *)

module Batch = struct
  let result_of_path cfg ~op path =
    try
      let spec = Parser.parse_file path in
      let deadline_ns =
        if cfg.sv_timeout_ms > 0 then
          Some
            (Int64.add (Span.now_ns ())
               (Int64.mul (Int64.of_int cfg.sv_timeout_ms) 1_000_000L))
        else None
      in
      let o =
        Exec.run cfg ~op ~max_states:cfg.sv_max_states ?deadline_ns
          ~file:path spec
      in
      Json.Obj
        [ ("spec", Json.Str path);
          ("ok", Json.Bool true);
          ("cached", Json.Bool o.Exec.oc_cached);
          ("exit", Json.Int o.Exec.oc_exit);
          ("result", o.Exec.oc_result) ]
    with e ->
      let kind, message =
        match error_of_exn e with
        | Some km -> km
        | None -> ("internal", Printexc.to_string e)
      in
      Json.Obj
        [ ("spec", Json.Str path);
          ("ok", Json.Bool false);
          ( "error",
            Json.Obj
              [ ("kind", Json.Str kind); ("message", Json.Str message) ] ) ]

  let run cfg ~op ~jobs paths =
    let arr = Array.of_list paths in
    let n = Array.length arr in
    let out = Array.make n Json.Null in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <- result_of_path cfg ~op arr.(i);
          loop ()
        end
      in
      loop ()
    in
    let jobs = max 1 (min jobs n) in
    let doms = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join doms;
    let ok = ref 0 and cached = ref 0 and failed = ref 0 in
    Array.iter
      (fun r ->
        print_string (Json.to_string r);
        print_newline ();
        let good =
          Json.member "ok" r = Some (Json.Bool true)
          && Json.member "exit" r = Some (Json.Int 0)
        in
        if good then incr ok else incr failed;
        if Json.member "cached" r = Some (Json.Bool true) then incr cached)
      out;
    Fmt.epr "fsa: batch: %d spec(s), %d ok, %d cached, %d failed@." n !ok
      !cached !failed;
    if !failed > 0 then 1 else 0
  end
