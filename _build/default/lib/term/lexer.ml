(* A tiny hand-rolled lexer shared by the parsers for terms and actions.
   The token language is deliberately small: identifiers, integers and the
   punctuation used by the action-term syntax of the paper, e.g.
   [show(HMI_w, warn)]. *)

type token =
  | Ident of string
  | Int of int
  | Lparen
  | Rparen
  | Comma
  | Eof

type t = { input : string; mutable pos : int; mutable peeked : token option }

exception Error of string * int

let error t msg = raise (Error (msg, t.pos))

let make input = { input; pos = 0; peeked = None }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let rec skip_blank t =
  if t.pos < String.length t.input then
    match t.input.[t.pos] with
    | ' ' | '\t' | '\n' | '\r' ->
      t.pos <- t.pos + 1;
      skip_blank t
    | _ -> ()

let lex_while t pred =
  let start = t.pos in
  let n = String.length t.input in
  let rec go i = if i < n && pred t.input.[i] then go (i + 1) else i in
  let stop = go start in
  t.pos <- stop;
  String.sub t.input start (stop - start)

let read_token t =
  skip_blank t;
  if t.pos >= String.length t.input then Eof
  else
    match t.input.[t.pos] with
    | '(' ->
      t.pos <- t.pos + 1;
      Lparen
    | ')' ->
      t.pos <- t.pos + 1;
      Rparen
    | ',' ->
      t.pos <- t.pos + 1;
      Comma
    | c when is_digit c -> Int (int_of_string (lex_while t is_digit))
    | c when is_ident_start c -> Ident (lex_while t is_ident_char)
    | c -> error t (Printf.sprintf "unexpected character %C" c)

let next t =
  match t.peeked with
  | Some tok ->
    t.peeked <- None;
    tok
  | None -> read_token t

let peek t =
  match t.peeked with
  | Some tok -> tok
  | None ->
    let tok = read_token t in
    t.peeked <- Some tok;
    tok

let expect t tok ~what =
  let got = next t in
  if got <> tok then error t (Printf.sprintf "expected %s" what)

let at_eof t = peek t = Eof
