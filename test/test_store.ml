(* Tests for Fsa_store: the JSON codec, the canonical model digest and
   the content-addressed on-disk cache (round-trip, corruption fallback,
   version fencing, LRU eviction). *)

module Json = Fsa_store.Json
module Store = Fsa_store.Store
module Elaborate = Fsa_spec.Elaborate
module Parser = Fsa_spec.Parser

(* A known-good specification exercising every declaration kind (the
   paper's two-vehicle scenario). *)
let spec_text =
  {|
component Vehicle {
  state esp = { }
  state gps = { }
  state bus = { }
  state hmi = { }
  shared net

  action sense: take esp(_x) -> put bus(_x)
  action pos:   take gps(_p) -> put bus(_p)
  action send:  take bus(sW), take bus(_p) when position(_p)
                -> put net(cam(self, _p))
  action rec:   take net(cam(_v, _p)) when _v != self
                -> put bus(warn(_p))
  action show:  take bus(warn(_p)), take bus(_q)
                when position(_q) && near(_p, _q)
                -> put hmi(warn)
}

instance V1 = Vehicle(1) { esp = { sW }, gps = { pos1 } }
instance V2 = Vehicle(2) { gps = { pos2 } }

model Warner(i) {
  action sense(ESP_i, sW)
  action pos(GPS_i, pos)
  action send(CU_i, cam(pos))
  flow sense -> send
  flow pos -> send
}

model Receiver(i) {
  action pos(GPS_i, pos)
  action rec(CU_i, cam(pos))
  action show(HMI_i, warn)
  flow rec -> show
  flow pos -> show
}

sos two_vehicles {
  use Warner(1) as V1
  use Receiver(2) as V2
  link V1.send -> V2.rec
}

check precedence V1_sense V2_show
check existence V2_show
|}

(* The same declarations in a different top-level order, with different
   layout and comments. *)
let spec_text_permuted =
  {|
// layout and declaration order changed; the model is the same
check existence V2_show

instance V2 = Vehicle(2) { gps = { pos2 } }

model Receiver(i) {
  action pos(GPS_i, pos)
  action rec(CU_i, cam(pos))
  action show(HMI_i, warn)
  flow rec -> show
  flow pos -> show
}

sos two_vehicles {
  use Warner(1) as V1
  use Receiver(2) as V2
  link V1.send -> V2.rec
}

component Vehicle {
  state esp = { }
  state gps = { }
  state bus = { }
  state hmi = { }
  shared net
  action sense: take esp(_x) -> put bus(_x)
  action pos:   take gps(_p) -> put bus(_p)
  action send:  take bus(sW), take bus(_p) when position(_p) -> put net(cam(self, _p))
  action rec:   take net(cam(_v, _p)) when _v != self -> put bus(warn(_p))
  action show:  take bus(warn(_p)), take bus(_q) when position(_q) && near(_p, _q) -> put hmi(warn)
}

instance V1 = Vehicle(1) { esp = { sW }, gps = { pos1 } }

model Warner(i) {
  action sense(ESP_i, sW)
  action pos(GPS_i, pos)
  action send(CU_i, cam(pos))
  flow sense -> send
  flow pos -> send
}

check precedence V1_sense V2_show
|}

let replace_first ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then None
    else if String.equal (String.sub s i m) sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i ->
    String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)

(* One guard flipped: same shape, different semantics. *)
let spec_text_guard_changed =
  replace_first ~sub:"when _v != self" ~by:"when _v == self" spec_text

let all_parts = [ `Apa; `Checks; `Models ]

let tmp_counter = ref 0

let tmp_counter_next () =
  incr tmp_counter;
  !tmp_counter

let tmp_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fsa_store_test_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let rm_rf dir =
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let with_store ?max_bytes f () =
  let dir = tmp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () -> f (Store.open_ ?max_bytes ~dir ()) dir)

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("null", Json.Null);
        ("bool", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 2.5);
        ("str", Json.Str "line\nbreak \"quoted\" \\ tab\t");
        ("list", Json.List [ Json.Int 1; Json.Str "x"; Json.Bool false ]);
        ("nested", Json.Obj [ ("k", Json.List []) ]) ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (Json.equal v v')
  | Error msg -> Alcotest.failf "re-parse failed: %s" msg

let test_json_parse_forms () =
  (match Json.parse {|  {"a": [1, 2.5, "A\n", true, null]}  |} with
  | Ok v ->
    Alcotest.(check bool) "unicode escape" true
      (Json.equal
         (Json.member "a" v |> Option.get)
         (Json.List
            [ Json.Int 1; Json.Float 2.5; Json.Str "A\n"; Json.Bool true;
              Json.Null ]))
  | Error msg -> Alcotest.failf "parse failed: %s" msg);
  (match Json.parse "{} trailing" with
  | Ok _ -> Alcotest.fail "trailing input must be rejected"
  | Error _ -> ());
  match Json.parse "not json" with
  | Ok _ -> Alcotest.fail "garbage must be rejected"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Canonical digests                                                   *)
(* ------------------------------------------------------------------ *)

let digest ?(parts = all_parts) text =
  Elaborate.digest_of_spec ~parts (Parser.parse_string text)

let test_digest_stable_across_reparse () =
  Alcotest.(check string) "two parses, one digest" (digest spec_text)
    (digest spec_text)

let test_digest_ignores_declaration_order () =
  Alcotest.(check string) "permuted declarations, one digest"
    (digest spec_text) (digest spec_text_permuted);
  List.iter
    (fun part ->
      Alcotest.(check string) "per part" (digest ~parts:[ part ] spec_text)
        (digest ~parts:[ part ] spec_text_permuted))
    all_parts

let test_digest_sensitive_to_guards () =
  Alcotest.(check bool) "guard change, new digest" false
    (String.equal (digest spec_text) (digest spec_text_guard_changed));
  (* the functional models did not change, so the `Models digest holds *)
  Alcotest.(check string) "models digest unchanged"
    (digest ~parts:[ `Models ] spec_text)
    (digest ~parts:[ `Models ] spec_text_guard_changed)

let test_cache_key_params () =
  let d = digest spec_text in
  let k1 =
    Store.cache_key ~digest:d ~kind:"reach"
      ~params:[ ("max_states", "10"); ("method", "direct") ]
  in
  let k2 =
    Store.cache_key ~digest:d ~kind:"reach"
      ~params:[ ("method", "direct"); ("max_states", "10") ]
  in
  let k3 =
    Store.cache_key ~digest:d ~kind:"reach"
      ~params:[ ("max_states", "11"); ("method", "direct") ]
  in
  Alcotest.(check string) "param order is canonicalised" k1 k2;
  Alcotest.(check bool) "params are significant" false (String.equal k1 k3);
  Alcotest.(check bool) "kind is significant" false
    (String.equal k1
       (Store.cache_key ~digest:d ~kind:"verify"
          ~params:[ ("max_states", "10"); ("method", "direct") ]))

(* ------------------------------------------------------------------ *)
(* On-disk entries                                                     *)
(* ------------------------------------------------------------------ *)

let entry key =
  { Store.e_key = key;
    e_kind = "reach";
    e_result =
      Json.Obj [ ("states", Json.Int 13); ("transitions", Json.Int 19) ];
    e_output = "states: 13, transitions: 19\n";
    e_exit = 0 }

let key_of i =
  Store.cache_key ~digest:(Store.digest_hex (string_of_int i)) ~kind:"reach"
    ~params:[]

let entry_file dir key = Filename.concat dir (key ^ ".json")

let test_entry_roundtrip =
  with_store @@ fun st dir ->
  let key = key_of 0 in
  Alcotest.(check bool) "miss before add" true (Store.find st ~key = None);
  Store.add st (entry key);
  (match Store.find st ~key with
  | None -> Alcotest.fail "hit expected after add"
  | Some e ->
    Alcotest.(check string) "kind survives" "reach" e.Store.e_kind;
    Alcotest.(check string) "output survives" "states: 13, transitions: 19\n"
      e.Store.e_output;
    Alcotest.(check int) "exit survives" 0 e.Store.e_exit;
    Alcotest.(check bool) "result survives" true
      (Json.equal (entry key).Store.e_result e.Store.e_result));
  (* a fresh handle over the same directory sees the entry *)
  let st' = Store.open_ ~dir () in
  Alcotest.(check bool) "persistent across handles" true
    (Store.find st' ~key <> None)

let test_corrupt_entry_is_a_miss =
  with_store @@ fun st dir ->
  let key = key_of 1 in
  Store.add st (entry key);
  let path = entry_file dir key in
  let content = In_channel.with_open_bin path In_channel.input_all in
  (* truncation *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub content 0 (String.length content / 2)));
  Alcotest.(check bool) "truncated entry is a miss" true
    (Store.find st ~key = None);
  (* flipped payload byte: checksum must catch it *)
  let flipped = replace_first ~sub:"\"exit\":0" ~by:"\"exit\":1" content in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc flipped);
  Alcotest.(check bool) "checksum mismatch is a miss" true
    (Store.find st ~key = None);
  (* stale format version *)
  let stale =
    replace_first
      ~sub:(Printf.sprintf "\"format\":%d" Store.format_version)
      ~by:"\"format\":999" content
  in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc stale);
  Alcotest.(check bool) "future format version is a miss" true
    (Store.find st ~key = None)

let test_eviction_bounds_the_store =
  (* each entry is a few hundred bytes; a 1 KiB budget forces eviction *)
  with_store ~max_bytes:1024 @@ fun st dir ->
  for i = 0 to 9 do
    Store.add st (entry (key_of i));
    (* mtime separation so the LRU order is unambiguous *)
    Unix.sleepf 0.01
  done;
  let files = Sys.readdir dir in
  let entries, tmp =
    Array.fold_left
      (fun (e, t) f ->
        if Filename.check_suffix f ".json" && f.[0] <> '.' then (e + 1, t)
        else (e, t + 1))
      (0, 0) files
  in
  Alcotest.(check int) "no temp residue" 0 tmp;
  Alcotest.(check bool) "evicted down to the budget" true
    (entries < 10 && entries >= 1);
  (* the newest entry survives, the oldest is gone *)
  Alcotest.(check bool) "newest kept" true (Store.find st ~key:(key_of 9) <> None);
  Alcotest.(check bool) "oldest evicted" true (Store.find st ~key:(key_of 0) = None)

let test_lru_bump_on_find () =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* size the budget off a real entry: room for two entries, not three *)
  let probe = Store.open_ ~dir () in
  Store.add probe (entry (key_of 0));
  let size = (Unix.stat (entry_file dir (key_of 0))).Unix.st_size in
  let st = Store.open_ ~max_bytes:((2 * size) + (size / 2)) ~dir () in
  Unix.sleepf 0.01;
  Store.add st (entry (key_of 1));
  Unix.sleepf 0.01;
  (* touch 0, making 1 the LRU entry *)
  ignore (Store.find st ~key:(key_of 0));
  Unix.sleepf 0.01;
  Store.add st (entry (key_of 2));
  Alcotest.(check bool) "recently used entry kept" true
    (Store.find st ~key:(key_of 0) <> None);
  Alcotest.(check bool) "least recently used entry evicted" true
    (Store.find st ~key:(key_of 1) = None)

let suite =
  [ Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse forms" `Quick test_json_parse_forms;
    Alcotest.test_case "digest stable across reparse" `Quick
      test_digest_stable_across_reparse;
    Alcotest.test_case "digest ignores declaration order" `Quick
      test_digest_ignores_declaration_order;
    Alcotest.test_case "digest sensitive to guards" `Quick
      test_digest_sensitive_to_guards;
    Alcotest.test_case "cache key params" `Quick test_cache_key_params;
    Alcotest.test_case "entry round-trip" `Quick test_entry_roundtrip;
    Alcotest.test_case "corrupt entry is a miss" `Quick
      test_corrupt_entry_is_a_miss;
    Alcotest.test_case "eviction bounds the store" `Quick
      test_eviction_bounds_the_store;
    Alcotest.test_case "lru bump on find" `Quick test_lru_bump_on_find ]
