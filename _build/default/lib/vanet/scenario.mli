(** The vehicular communication scenario (Sect. 3) as functional models —
    the manual analysis path of Sect. 4. *)

module Term = Fsa_term.Term
module Agent = Fsa_term.Agent
module Action = Fsa_term.Action
module Component = Fsa_model.Component
module Sos = Fsa_model.Sos

val forwarding_policy : string
(** Policy tag of the position-based forwarding flow (Sect. 4.4). *)

(** {1 Actions (Table 1)} *)

val rsu_send : Action.t
val sense : Agent.index -> Action.t
val gps_pos : Agent.index -> Action.t
val cu_send : Agent.index -> Action.t
val cu_rec : Agent.index -> Action.t
val cu_fwd : Agent.index -> Action.t
val show : Agent.index -> Action.t
val driver : Agent.index -> Agent.t

val table1 : (Action.t * string) list
(** The rows of Table 1: action and explanation. *)

(** {1 Functional component models (Fig. 1)} *)

val rsu_component : Component.t
val vehicle_template : Component.t
val restrict : Component.t -> string list -> Component.t
val vehicle_with_index : Agent.index -> Component.t
val warning_vehicle : Agent.index -> Component.t
val receiving_vehicle : Agent.index -> Component.t
val forwarding_vehicle : Agent.index -> Component.t

(** {1 SoS instances (Figs. 2-4)} *)

val w : Agent.index
(** The parameterised receiving vehicle [w]. *)

val rsu_and_vehicle : Sos.t
(** Fig. 2: vehicle [w] receives a warning from the RSU. *)

val two_vehicles : Sos.t
(** Fig. 3: vehicle [w] receives a warning from vehicle 1. *)

val three_vehicles : Sos.t
(** Fig. 4: vehicle 2 forwards warnings from vehicle 1 to vehicle [w]. *)

val chain : int -> Sos.t
(** [chain n]: vehicle 1 warns, vehicles 2..n-1 forward, vehicle [w]
    receives; [chain 2 = two_vehicles]. *)

val forwarders_of_chain : int -> int list

val v_forward_domain : Agent.t -> string option
(** Quantification domain of requirement (4): the GPS sensors of
    forwarding vehicles map to ["V_forward"]. *)

val enumerate_two_component_instances : unit -> Sos.t list
(** All structurally different two-component instances, isomorphic
    combinations neglected (Sect. 4.2). *)

val chain_concrete : int -> Sos.t
(** [chain n] with the receiver concretely indexed [n] (tool-path
    correspondence). *)

val pairs_concrete : int -> Sos.t
(** k independent warner/receiver pairs (manual-path counterpart of the
    Fig. 8 instance for k = 2). *)
