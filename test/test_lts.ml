(* Tests for Fsa_lts: reachability graphs.  Expected values are the
   published graph sizes of the paper (Figs. 7 and 9, Example 6). *)

module Term = Fsa_term.Term
module Action = Fsa_term.Action
module Apa = Fsa_apa.Apa
module Lts = Fsa_lts.Lts
module V = Fsa_vanet.Vehicle_apa

let action_list set = List.map Action.to_string (Action.Set.elements set)

let lts2 = lazy (Lts.explore (V.two_vehicles ()))
let lts4 = lazy (Lts.explore (V.four_vehicles ()))

let test_two_vehicle_graph () =
  let lts = Lazy.force lts2 in
  (* Fig. 7: the tool's graph has 13 states M-1..M-13 *)
  Alcotest.(check int) "13 states (Fig. 7)" 13 (Lts.nb_states lts);
  Alcotest.(check int) "1 dead state" 1 (List.length (Lts.deadlocks lts));
  Alcotest.(check (list string)) "minima (Example 6)"
    [ "V1_pos"; "V1_sense"; "V2_pos" ]
    (action_list (Lts.minima lts));
  Alcotest.(check (list string)) "maxima (Example 6)" [ "V2_show" ]
    (action_list (Lts.maxima lts))

let test_four_vehicle_graph () =
  let lts = Lazy.force lts4 in
  (* Fig. 9: 169 states (two independent 13-state pairs) *)
  Alcotest.(check int) "169 states (Fig. 9)" 169 (Lts.nb_states lts);
  Alcotest.(check int) "unique dead state" 1 (List.length (Lts.deadlocks lts));
  Alcotest.(check (list string)) "six minima"
    [ "V1_pos"; "V1_sense"; "V2_pos"; "V3_pos"; "V3_sense"; "V4_pos" ]
    (action_list (Lts.minima lts));
  Alcotest.(check (list string)) "two maxima" [ "V2_show"; "V4_show" ]
    (action_list (Lts.maxima lts))

let test_states_equal_order_ideals () =
  (* Definition check: the reachability graph states are exactly the order
     ideals of the scenario's event poset. *)
  let module G = Fsa_graph.Digraph.Make (struct
    type t = string

    let compare = String.compare
    let pp = Fmt.string
  end) in
  let module P = Fsa_order.Poset.Make (G) in
  let poset =
    P.of_relation_exn
      [ ("V1_sense", "V1_send"); ("V1_pos", "V1_send");
        ("V1_send", "V2_rec"); ("V2_rec", "V2_show"); ("V2_pos", "V2_show") ]
  in
  Alcotest.(check int) "states = ideals"
    (P.count_ideals poset)
    (Lts.nb_states (Lazy.force lts2));
  (* and the number of complete runs equals the linear extensions *)
  let count_runs lts =
    let rec go s =
      match Lts.succ lts s with
      | [] -> 1
      | succs ->
        List.fold_left (fun acc tr -> acc + go tr.Lts.t_dst) 0 succs
    in
    go (Lts.initial lts)
  in
  Alcotest.(check int) "maximal runs = linear extensions"
    (P.count_linear_extensions poset)
    (count_runs (Lazy.force lts2))

let test_trace_to () =
  let lts = Lazy.force lts2 in
  (match Lts.deadlocks lts with
  | [ dead ] -> (
    match Lts.trace_to lts dead with
    | Some trace ->
      Alcotest.(check int) "full run has 6 actions" 6 (List.length trace);
      (* replaying the trace in the APA ends in the dead state *)
      let apa = V.two_vehicles () in
      let final =
        List.fold_left
          (fun st label ->
            match
              List.find_opt
                (fun (_, l, _) -> Action.equal l label)
                (Apa.step apa st)
            with
            | Some (_, _, next) -> next
            | None -> Alcotest.fail "trace must be replayable")
          (Apa.initial_state apa) trace
      in
      Alcotest.(check bool) "replay reaches a deadlock" true
        (Apa.is_deadlocked apa final)
    | None -> Alcotest.fail "dead state must be reachable")
  | _ -> Alcotest.fail "expected exactly one dead state");
  Alcotest.(check (option (list (Alcotest.testable Action.pp Action.equal))))
    "trace to initial is empty" (Some [])
    (Lts.trace_to lts (Lts.initial lts))

let test_words_prefix_closed () =
  let lts = Lazy.force lts2 in
  let words = Lts.words ~max_len:3 lts in
  Alcotest.(check bool) "contains empty word" true (List.mem [] words);
  List.iter
    (fun w ->
      match List.rev w with
      | [] -> ()
      | _ :: butlast_rev ->
        Alcotest.(check bool) "prefix closed" true
          (List.mem (List.rev butlast_rev) words))
    words

let test_depends_on_direct () =
  let lts = Lazy.force lts4 in
  Alcotest.(check bool) "V2_show depends on V1_sense" true
    (Lts.depends_on lts ~max_action:(V.v_show 2) ~min_action:(V.v_sense 1));
  Alcotest.(check bool) "V4_show independent of V1_sense" false
    (Lts.depends_on lts ~max_action:(V.v_show 4) ~min_action:(V.v_sense 1));
  Alcotest.(check bool) "V4_show depends on V3_pos" true
    (Lts.depends_on lts ~max_action:(V.v_show 4) ~min_action:(V.v_pos 3))

let test_alphabet () =
  let lts = Lazy.force lts2 in
  Alcotest.(check int) "6 distinct labels" 6
    (Action.Set.cardinal (Lts.alphabet lts))

let test_stats_and_dot () =
  let lts = Lazy.force lts2 in
  let s = Lts.stats lts in
  Alcotest.(check int) "stats states" 13 s.Lts.nb_states;
  Alcotest.(check int) "stats transitions" 19 s.Lts.nb_transitions;
  let dot = Lts.dot lts in
  Alcotest.(check bool) "mentions M-1" true
    (let sub = "M-1" in
     let rec contains i =
       i + String.length sub <= String.length dot
       && (String.sub dot i (String.length sub) = sub || contains (i + 1))
     in
     contains 0)

let test_state_space_bound () =
  match Lts.explore ~max_states:5 (V.two_vehicles ()) with
  | _ -> Alcotest.fail "bound must trigger"
  | exception Lts.State_space_too_large 5 -> ()

let test_pairs_scaling () =
  (* 13^k states for k independent pairs *)
  Alcotest.(check int) "one pair" 13 (Lts.nb_states (Lts.explore (V.pairs 1)));
  Alcotest.(check int) "two pairs" 169 (Lts.nb_states (Lts.explore (V.pairs 2)));
  Alcotest.(check int) "three pairs" 2197
    (Lts.nb_states (Lts.explore (V.pairs 3)))

let test_chain_apa () =
  (* forwarding chain: the receiver's show is the unique maximum *)
  let lts = Lts.explore (V.chain 3) in
  Alcotest.(check (list string)) "maxima" [ "V3_show" ]
    (action_list (Lts.maxima lts));
  Alcotest.(check (list string)) "minima"
    [ "V1_pos"; "V1_sense"; "V2_pos"; "V3_pos" ]
    (action_list (Lts.minima lts));
  Alcotest.(check bool) "V3_show depends on the forwarder's position" true
    (Lts.depends_on lts ~max_action:(V.v_show 3) ~min_action:(V.v_pos 2))

let test_progress_finalized_on_abort () =
  (* Regression: aborting on the state bound used to skip Progress.finish
     (dangling live status line) and leave lts.states_per_sec unset. *)
  let module Metrics = Fsa_obs.Metrics in
  let module Progress = Fsa_obs.Progress in
  let updates = ref [] in
  let progress =
    Progress.create ~every_n:1 ~every_ns:0L (fun u -> updates := u :: !updates)
  in
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
  @@ fun () ->
  (match Lts.explore ~max_states:5 ~progress (V.two_vehicles ()) with
  | _ -> Alcotest.fail "bound must trigger"
  | exception Lts.State_space_too_large 5 -> ());
  (match !updates with
  | last :: _ ->
    Alcotest.(check bool) "last update is final" true last.Progress.u_final
  | [] -> Alcotest.fail "progress must have reported");
  Alcotest.(check bool) "rate gauge set despite abort" true
    (Metrics.gauge_value (Metrics.gauge "lts.states_per_sec") > 0.)

let test_count_runs_long_chain () =
  (* Regression: counting complete runs recursed once per path edge and
     blew the stack on long chains. *)
  let n = 100_001 in
  let label = Action.make "step" in
  let edges =
    List.init (n - 1) (fun i ->
        { Lts.t_src = i; t_label = label; t_dst = i + 1 })
  in
  let lts = Lts.of_edges ~name:"chain" ~nb_states:n edges in
  Alcotest.(check (option int)) "one maximal run" (Some 1)
    (Lts.count_complete_runs lts);
  (* a diamond has two runs; a cycle has none *)
  let l s = Action.make s in
  let diamond =
    Lts.of_edges ~nb_states:4
      [ { Lts.t_src = 0; t_label = l "a"; t_dst = 1 };
        { Lts.t_src = 0; t_label = l "b"; t_dst = 2 };
        { Lts.t_src = 1; t_label = l "b"; t_dst = 3 };
        { Lts.t_src = 2; t_label = l "a"; t_dst = 3 } ]
  in
  Alcotest.(check (option int)) "diamond" (Some 2)
    (Lts.count_complete_runs diamond);
  let cycle =
    Lts.of_edges ~nb_states:2
      [ { Lts.t_src = 0; t_label = l "a"; t_dst = 1 };
        { Lts.t_src = 1; t_label = l "b"; t_dst = 0 } ]
  in
  Alcotest.(check (option int)) "cyclic" None (Lts.count_complete_runs cycle)

(* The parallel exploration must be bit-identical to the sequential one:
   same state numbering, same transition lists, same analysis results. *)
let check_par_matches_seq name apa =
  let seq = Lts.explore apa in
  List.iter
    (fun jobs ->
      let par = Lts.explore_par ~jobs apa in
      let ctx = Printf.sprintf "%s jobs=%d" name jobs in
      Alcotest.(check int) (ctx ^ ": states") (Lts.nb_states seq)
        (Lts.nb_states par);
      Alcotest.(check int)
        (ctx ^ ": transitions")
        (Lts.nb_transitions seq) (Lts.nb_transitions par);
      let triples lts =
        List.map
          (fun tr -> (tr.Lts.t_src, Action.to_string tr.Lts.t_label, tr.Lts.t_dst))
          (Lts.transitions lts)
      in
      Alcotest.(check (list (triple int string int)))
        (ctx ^ ": identical transition lists")
        (triples seq) (triples par);
      List.iter
        (fun i ->
          Alcotest.(check string)
            (ctx ^ ": state " ^ string_of_int i)
            (Apa.State.to_string (Lts.state seq i))
            (Apa.State.to_string (Lts.state par i)))
        (List.init (Lts.nb_states seq) Fun.id);
      Alcotest.(check (list string)) (ctx ^ ": minima")
        (action_list (Lts.minima seq))
        (action_list (Lts.minima par));
      Alcotest.(check (list string)) (ctx ^ ": maxima")
        (action_list (Lts.maxima seq))
        (action_list (Lts.maxima par));
      Alcotest.(check (list int)) (ctx ^ ": deadlocks") (Lts.deadlocks seq)
        (Lts.deadlocks par))
    [ 1; 2; 4 ]

let test_par_matches_seq_vanet () =
  check_par_matches_seq "two_vehicles" (V.two_vehicles ());
  check_par_matches_seq "four_vehicles" (V.four_vehicles ());
  check_par_matches_seq "pairs3" (V.pairs 3)

let test_par_matches_seq_grid () =
  check_par_matches_seq "grid" (Fsa_grid.Grid_apa.demand_response ())

let test_par_state_space_bound () =
  match Lts.explore_par ~max_states:5 ~jobs:2 (V.two_vehicles ()) with
  | _ -> Alcotest.fail "bound must trigger"
  | exception Lts.State_space_too_large 5 -> ()

let suite =
  [ Alcotest.test_case "two-vehicle graph (Fig. 7)" `Quick test_two_vehicle_graph;
    Alcotest.test_case "four-vehicle graph (Fig. 9)" `Quick test_four_vehicle_graph;
    Alcotest.test_case "states = order ideals" `Quick test_states_equal_order_ideals;
    Alcotest.test_case "trace to dead state" `Quick test_trace_to;
    Alcotest.test_case "words prefix closed" `Quick test_words_prefix_closed;
    Alcotest.test_case "direct dependence" `Quick test_depends_on_direct;
    Alcotest.test_case "alphabet" `Quick test_alphabet;
    Alcotest.test_case "stats and dot" `Quick test_stats_and_dot;
    Alcotest.test_case "state space bound" `Quick test_state_space_bound;
    Alcotest.test_case "pairs scaling 13^k" `Quick test_pairs_scaling;
    Alcotest.test_case "forwarding chain APA" `Quick test_chain_apa;
    Alcotest.test_case "progress finalized on abort" `Quick
      test_progress_finalized_on_abort;
    Alcotest.test_case "count runs on a 100k chain" `Quick
      test_count_runs_long_chain;
    Alcotest.test_case "parallel = sequential (vanet)" `Quick
      test_par_matches_seq_vanet;
    Alcotest.test_case "parallel = sequential (grid)" `Quick
      test_par_matches_seq_grid;
    Alcotest.test_case "parallel state space bound" `Quick
      test_par_state_space_bound ]
