(* Position model for the vehicular scenario.  The paper's APA uses
   abstract positions pos1..pos4 and a guard [distance(msg, gps) < range];
   we give the abstract positions concrete coordinates so that the guard is
   computable: pos1 and pos2 are within warning range of each other, as are
   pos3 and pos4, but the two areas are far apart (the Fig. 8 scenario of
   two vehicle pairs out of range from one another). *)

module Term = Fsa_term.Term

type coord = { x : int; y : int }

let table =
  [ ("pos1", { x = 0; y = 0 });
    ("pos2", { x = 0; y = 1 });
    ("pos3", { x = 100; y = 100 });
    ("pos4", { x = 100; y = 101 }) ]

let positions = List.map (fun (p, _) -> Term.sym p) table

let is_position = function
  | Term.Sym s -> List.mem_assoc s table
  | Term.Int _ | Term.Var _ | Term.App _ -> false

let coord_of = function
  | Term.Sym s -> List.assoc_opt s table
  | Term.Int _ | Term.Var _ | Term.App _ -> None

let default_range = 5

(* Manhattan distance between two abstract positions; [None] when either
   term is not a known position. *)
let distance p q =
  match coord_of p, coord_of q with
  | Some a, Some b -> Some (abs (a.x - b.x) + abs (a.y - b.y))
  | (None | Some _), _ -> None

let in_range ?(range = default_range) p q =
  match distance p q with Some d -> d < range | None -> false
