test/test_grid.ml: Alcotest Fsa_apa Fsa_core Fsa_grid Fsa_lts Fsa_model Fsa_requirements Fsa_term Lazy List
