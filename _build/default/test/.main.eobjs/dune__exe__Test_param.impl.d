test/test_param.ml: Alcotest Fmt Fsa_hom Fsa_lts Fsa_mc Fsa_param Fsa_requirements Fsa_term Fsa_vanet List String
