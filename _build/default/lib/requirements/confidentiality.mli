(** Confidentiality requirements — the dual, forward-flow analysis
    sketched as future work in Sect. 6 of the paper.

    Inputs carry a classification level; outputs carry an observer
    clearance; the inferred level of an output is the join of the levels
    of all inputs it functionally depends on. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent

(** {1 Classification lattice} *)

type level = Public | Internal | Confidential | Secret

val compare_level : level -> level -> int
val leq_level : level -> level -> bool
val join : level -> level -> level
val joins : level list -> level
val pp_level : level Fmt.t

(** {1 Labelling} *)

type labelling = {
  source_level : Action.t -> level;
  sink_clearance : Action.t -> level;
  observers : Action.t -> Agent.t;
}

val default_labelling : labelling
(** Everything [Internal]; the observer is the acting component. *)

(** {1 Requirements} *)

type t = {
  source : Action.t;
  sink : Action.t;
  level : level;
  observer : Agent.t;
}

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val pp_prose : t Fmt.t
val pp_set : t list Fmt.t

val derive :
  ?labelling:labelling -> ?threshold:level -> Fsa_model.Sos.t -> t list
(** One requirement per (input, dependent output) pair whose input is
    classified at or above [threshold] (default [Internal]). *)

val inferred_levels :
  ?labelling:labelling -> Fsa_model.Sos.t -> (Action.t * level) list
(** Join of the levels of the inputs reaching each output. *)

type violation = {
  v_sink : Action.t;
  v_inferred : level;
  v_clearance : level;
  v_sources : Action.t list;
}

val pp_violation : violation Fmt.t

val violations : ?labelling:labelling -> Fsa_model.Sos.t -> violation list
(** Outputs whose clearance is below their inferred level. *)
