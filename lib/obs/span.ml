(* Wall-time spans with nesting and a propagatable trace context.

   A span measures one phase of the pipeline (elaborate, explore, derive,
   ...).  Spans nest lexically via [with_]; each completed span is kept in
   a process-wide buffer and can be exported either as a human-readable
   indented summary or as Chrome trace_event JSON ("ph":"X" complete
   events, timestamps in microseconds) that chrome://tracing and Perfetto
   open directly.

   Each domain carries a trace context — a trace id plus the id of the
   innermost open span — in domain-local state.  [with_trace] roots a
   context for one request; [current_context]/[with_context] hand it to a
   freshly spawned domain, so the spans a worker records attach to the
   same trace tree as its parent's.  Span ids are drawn from one global
   counter, so parent links are unambiguous across domains.

   The clock is pluggable so that tests can inject a deterministic fake;
   the default derives a never-decreasing nanosecond clock from
   [Unix.gettimeofday].  Like metrics, recording is gated on
   [Metrics.enabled]: with observability off, [with_] is a tail call to
   its body. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_ns : int64;
  ev_dur_ns : int64;
  ev_depth : int;
  ev_seq : int;
  ev_trace : string;
  ev_id : int;
  ev_parent : int;
  ev_domain : int;
}

type context = { ctx_trace : string; ctx_parent : int; ctx_depth : int }

(* Rebased to process start: small offsets keep full double precision in
   [gettimeofday], giving effectively-nanosecond resolution, and trace
   timestamps start near zero.  Clamped to be non-decreasing. *)
let default_clock =
  let epoch = Unix.gettimeofday () in
  let last = ref 0L in
  fun () ->
    let now = Int64.of_float ((Unix.gettimeofday () -. epoch) *. 1e9) in
    if Int64.compare now !last > 0 then last := now;
    !last

let clock = ref default_clock
let set_clock f = clock := f
let use_default_clock () = clock := default_clock
let now_ns () = !clock ()

(* The completed-span buffer is shared across domains (server workers
   record request spans concurrently) and protected by a mutex; the
   trace context — trace id, innermost open span, nesting depth — is
   per-domain state, so spans nest lexically within each domain without
   cross-talk. *)
let recorded : event list ref = ref []
let seq = ref 0
let lock = Mutex.create ()
let next_id = Atomic.make 1

type dstate = {
  mutable ds_trace : string;
  mutable ds_parent : int;
  mutable ds_depth : int;
}

let dls = Domain.DLS.new_key (fun () -> { ds_trace = ""; ds_parent = 0; ds_depth = 0 })

let reset () =
  Mutex.protect lock (fun () ->
      recorded := [];
      seq := 0);
  Atomic.set next_id 1;
  let st = Domain.DLS.get dls in
  st.ds_trace <- "";
  st.ds_parent <- 0;
  st.ds_depth <- 0

let current_trace () = (Domain.DLS.get dls).ds_trace

let current_context () =
  let st = Domain.DLS.get dls in
  { ctx_trace = st.ds_trace; ctx_parent = st.ds_parent; ctx_depth = st.ds_depth }

let with_context ctx f =
  let st = Domain.DLS.get dls in
  let saved_trace = st.ds_trace
  and saved_parent = st.ds_parent
  and saved_depth = st.ds_depth in
  st.ds_trace <- ctx.ctx_trace;
  st.ds_parent <- ctx.ctx_parent;
  st.ds_depth <- ctx.ctx_depth;
  Fun.protect
    ~finally:(fun () ->
      st.ds_trace <- saved_trace;
      st.ds_parent <- saved_parent;
      st.ds_depth <- saved_depth)
    f

let with_trace ~trace_id f =
  with_context { ctx_trace = trace_id; ctx_parent = 0; ctx_depth = 0 } f

(* The flight recorder hooks in here to turn span boundaries into
   phase_start/phase_end ring events; the already-read timestamp is
   passed along so the hook costs no extra clock reading (and does not
   perturb injected test clocks). *)
let phase_hook : ([ `Start | `End ] -> string -> int64 -> unit) ref =
  ref (fun _ _ _ -> ())

let set_phase_hook f = phase_hook := f

let with_ ?(cat = "fsa") name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let st = Domain.DLS.get dls in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = st.ds_parent and d = st.ds_depth in
    st.ds_parent <- id;
    st.ds_depth <- d + 1;
    let start = now_ns () in
    !phase_hook `Start name start;
    let finish () =
      let stop = now_ns () in
      !phase_hook `End name stop;
      st.ds_parent <- parent;
      st.ds_depth <- d;
      Mutex.protect lock (fun () ->
          let s = !seq in
          Stdlib.incr seq;
          recorded :=
            { ev_name = name;
              ev_cat = cat;
              ev_start_ns = start;
              ev_dur_ns = Int64.sub stop start;
              ev_depth = d;
              ev_seq = s;
              ev_trace = st.ds_trace;
              ev_id = id;
              ev_parent = parent;
              ev_domain = (Domain.self () :> int) }
            :: !recorded)
    in
    Fun.protect ~finally:finish f
  end

(* Chronological order: by start time, parents before the children that
   share their start instant, sequence number as the final tiebreak. *)
let events () =
  List.sort
    (fun a b ->
      let c = Int64.compare a.ev_start_ns b.ev_start_ns in
      if c <> 0 then c
      else
        let c = Stdlib.compare a.ev_depth b.ev_depth in
        if c <> 0 then c else Stdlib.compare a.ev_seq b.ev_seq)
    (Mutex.protect lock (fun () -> !recorded))

let events_for_trace trace =
  List.filter (fun ev -> String.equal ev.ev_trace trace) (events ())

(* Fixed-point microseconds with nanosecond precision: deterministic and
   valid as a JSON number. *)
let us_of_ns ns =
  Printf.sprintf "%Ld.%03Ld" (Int64.div ns 1_000L) (Int64.rem ns 1_000L)

let to_chrome_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  let first = ref true in
  List.iter
    (fun ev ->
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Buffer.add_string b "{\"name\":\"";
      Metrics.json_escape b ev.ev_name;
      Buffer.add_string b "\",\"cat\":\"";
      Metrics.json_escape b ev.ev_cat;
      Buffer.add_string b "\",\"ph\":\"X\",\"ts\":";
      Buffer.add_string b (us_of_ns ev.ev_start_ns);
      Buffer.add_string b ",\"dur\":";
      Buffer.add_string b (us_of_ns ev.ev_dur_ns);
      Buffer.add_string b ",\"pid\":0,\"tid\":";
      Buffer.add_string b (string_of_int ev.ev_domain);
      Buffer.add_string b ",\"args\":{\"depth\":";
      Buffer.add_string b (string_of_int ev.ev_depth);
      if ev.ev_trace <> "" then begin
        Buffer.add_string b ",\"trace\":\"";
        Metrics.json_escape b ev.ev_trace;
        Buffer.add_string b "\",\"span\":";
        Buffer.add_string b (string_of_int ev.ev_id);
        Buffer.add_string b ",\"parent\":";
        Buffer.add_string b (string_of_int ev.ev_parent)
      end;
      Buffer.add_string b "}}")
    (events ());
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let pp_dur ppf ns =
  let f = Int64.to_float ns in
  if f >= 1e9 then Fmt.pf ppf "%.2f s" (f /. 1e9)
  else if f >= 1e6 then Fmt.pf ppf "%.2f ms" (f /. 1e6)
  else if f >= 1e3 then Fmt.pf ppf "%.2f us" (f /. 1e3)
  else Fmt.pf ppf "%Ld ns" ns

let pp_summary ppf () =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun ev ->
      Fmt.pf ppf "%s%-*s %a@,"
        (String.make (2 * ev.ev_depth) ' ')
        (max 1 (40 - (2 * ev.ev_depth)))
        ev.ev_name pp_dur ev.ev_dur_ns)
    (events ());
  Fmt.pf ppf "@]"
