(* Persistent directed graphs over an ordered vertex type, with the graph
   algorithms needed by functional security analysis: reachability,
   topological order, cycle detection, strongly connected components,
   reflexive/transitive closure and reduction, and label-preserving
   isomorphism (used to discard isomorphic SoS instance combinations). *)

module type VERTEX = sig
  type t

  val compare : t -> t -> int
  val pp : t Fmt.t
end

module type S = sig
  type vertex
  type t

  module Vset : Set.S with type elt = vertex
  module Vmap : Map.S with type key = vertex

  val compare_vertex : vertex -> vertex -> int
  val pp_vertex : vertex Fmt.t
  val empty : t
  val is_empty : t -> bool
  val add_vertex : vertex -> t -> t
  val add_edge : vertex -> vertex -> t -> t
  val remove_edge : vertex -> vertex -> t -> t
  val remove_vertex : vertex -> t -> t
  val of_edges : ?vertices:vertex list -> (vertex * vertex) list -> t
  val mem_vertex : vertex -> t -> bool
  val mem_edge : vertex -> vertex -> t -> bool
  val succ : vertex -> t -> Vset.t
  val pred : vertex -> t -> Vset.t
  val vertices : t -> Vset.t
  val edges : t -> (vertex * vertex) list
  val nb_vertices : t -> int
  val nb_edges : t -> int
  val out_degree : vertex -> t -> int
  val in_degree : vertex -> t -> int
  val sources : t -> Vset.t
  val sinks : t -> Vset.t
  val fold_vertices : (vertex -> 'a -> 'a) -> t -> 'a -> 'a
  val fold_edges : (vertex -> vertex -> 'a -> 'a) -> t -> 'a -> 'a
  val map : (vertex -> vertex) -> t -> t
  val union : t -> t -> t
  val reverse : t -> t
  val reachable : vertex -> t -> Vset.t
  val co_reachable : vertex -> t -> Vset.t
  val topological_sort : t -> vertex list option
  val find_cycle : t -> vertex list option
  val is_acyclic : t -> bool
  val sccs : t -> vertex list list
  val transitive_closure : ?reflexive:bool -> t -> t
  val transitive_closure_dense : ?reflexive:bool -> t -> t
  val transitive_reduction : t -> t
  val max_flow_unit : source:vertex -> sink:vertex -> t -> int * (vertex * vertex) list
  val min_edge_cut : source:vertex -> sink:vertex -> t -> (vertex * vertex) list
  val isomorphic : ?label:(vertex -> vertex -> bool) -> t -> t -> bool
  val pp : t Fmt.t
end

module Make (V : VERTEX) : S with type vertex = V.t = struct
  type vertex = V.t

  module Vset = Set.Make (V)
  module Vmap = Map.Make (V)

  let compare_vertex = V.compare
  let pp_vertex = V.pp

  (* Successor and predecessor maps are kept in sync; every vertex is
     present in both maps (possibly with an empty set). *)
  type t = { succ : Vset.t Vmap.t; pred : Vset.t Vmap.t }

  let empty = { succ = Vmap.empty; pred = Vmap.empty }
  let is_empty g = Vmap.is_empty g.succ

  let add_vertex v g =
    if Vmap.mem v g.succ then g
    else
      { succ = Vmap.add v Vset.empty g.succ;
        pred = Vmap.add v Vset.empty g.pred }

  let adj v m = match Vmap.find_opt v m with Some s -> s | None -> Vset.empty

  let add_edge u v g =
    let g = add_vertex u (add_vertex v g) in
    { succ = Vmap.add u (Vset.add v (adj u g.succ)) g.succ;
      pred = Vmap.add v (Vset.add u (adj v g.pred)) g.pred }

  let remove_edge u v g =
    { succ = Vmap.add u (Vset.remove v (adj u g.succ)) g.succ;
      pred = Vmap.add v (Vset.remove u (adj v g.pred)) g.pred }

  let remove_vertex v g =
    let succs = adj v g.succ and preds = adj v g.pred in
    let g = Vset.fold (fun w acc -> remove_edge v w acc) succs g in
    let g = Vset.fold (fun u acc -> remove_edge u v acc) preds g in
    { succ = Vmap.remove v g.succ; pred = Vmap.remove v g.pred }

  let of_edges ?(vertices = []) edges =
    let g = List.fold_left (fun acc v -> add_vertex v acc) empty vertices in
    List.fold_left (fun acc (u, v) -> add_edge u v acc) g edges

  let mem_vertex v g = Vmap.mem v g.succ
  let mem_edge u v g = Vset.mem v (adj u g.succ)
  let succ v g = adj v g.succ
  let pred v g = adj v g.pred

  let vertices g = Vmap.fold (fun v _ acc -> Vset.add v acc) g.succ Vset.empty

  let edges g =
    Vmap.fold
      (fun u succs acc -> Vset.fold (fun v acc -> (u, v) :: acc) succs acc)
      g.succ []
    |> List.rev

  let nb_vertices g = Vmap.cardinal g.succ
  let nb_edges g = Vmap.fold (fun _ s acc -> acc + Vset.cardinal s) g.succ 0
  let out_degree v g = Vset.cardinal (adj v g.succ)
  let in_degree v g = Vset.cardinal (adj v g.pred)

  let sources g =
    Vmap.fold
      (fun v preds acc -> if Vset.is_empty preds then Vset.add v acc else acc)
      g.pred Vset.empty

  let sinks g =
    Vmap.fold
      (fun v succs acc -> if Vset.is_empty succs then Vset.add v acc else acc)
      g.succ Vset.empty

  let fold_vertices f g acc = Vmap.fold (fun v _ acc -> f v acc) g.succ acc

  let fold_edges f g acc =
    Vmap.fold
      (fun u succs acc -> Vset.fold (fun v acc -> f u v acc) succs acc)
      g.succ acc

  let map f g =
    fold_edges
      (fun u v acc -> add_edge (f u) (f v) acc)
      g
      (fold_vertices (fun v acc -> add_vertex (f v) acc) g empty)

  let union g1 g2 =
    fold_edges
      (fun u v acc -> add_edge u v acc)
      g2
      (fold_vertices (fun v acc -> add_vertex v acc) g2 g1)

  let reverse g = { succ = g.pred; pred = g.succ }

  let reachable_gen adjacency v =
    let rec go visited = function
      | [] -> visited
      | u :: rest ->
        if Vset.mem u visited then go visited rest
        else
          let visited = Vset.add u visited in
          go visited (Vset.elements (adj u adjacency) @ rest)
    in
    go Vset.empty [ v ]

  let reachable v g = reachable_gen g.succ v
  let co_reachable v g = reachable_gen g.pred v

  (* Kahn's algorithm; [None] when the graph has a cycle. *)
  let topological_sort g =
    let in_deg = Vmap.map Vset.cardinal g.pred in
    let ready =
      Vmap.fold (fun v d acc -> if d = 0 then v :: acc else acc) in_deg []
    in
    let rec go in_deg ready acc n =
      match ready with
      | [] -> if n = nb_vertices g then Some (List.rev acc) else None
      | v :: ready ->
        let in_deg, ready =
          Vset.fold
            (fun w (in_deg, ready) ->
              let d = Vmap.find w in_deg - 1 in
              let in_deg = Vmap.add w d in_deg in
              if d = 0 then (in_deg, w :: ready) else (in_deg, ready))
            (adj v g.succ) (in_deg, ready)
        in
        go in_deg ready (v :: acc) (n + 1)
    in
    go in_deg ready [] 0

  (* Find a cycle via DFS with colouring; the returned list is the cycle's
     vertex sequence (first vertex repeated implicitly). *)
  let find_cycle g =
    let exception Found of vertex list in
    let grey = ref Vset.empty and black = ref Vset.empty in
    let rec visit path v =
      if Vset.mem v !black then ()
      else if Vset.mem v !grey then begin
        (* [path] holds the DFS stack from the root; cut at [v]. *)
        let rec cut acc = function
          | [] -> acc
          | u :: rest ->
            if V.compare u v = 0 then u :: acc else cut (u :: acc) rest
        in
        raise (Found (cut [] path))
      end
      else begin
        grey := Vset.add v !grey;
        Vset.iter (visit (v :: path)) (adj v g.succ);
        grey := Vset.remove v !grey;
        black := Vset.add v !black
      end
    in
    match Vmap.iter (fun v _ -> visit [] v) g.succ with
    | () -> None
    | exception Found cycle -> Some cycle

  let is_acyclic g = match topological_sort g with Some _ -> true | None -> false

  (* Tarjan's strongly connected components, iterative-enough for our model
     sizes (recursion depth is bounded by the number of vertices). *)
  let sccs g =
    let index = ref 0 in
    let indices = ref Vmap.empty in
    let lowlinks = ref Vmap.empty in
    let on_stack = ref Vset.empty in
    let stack = ref [] in
    let components = ref [] in
    let rec strongconnect v =
      indices := Vmap.add v !index !indices;
      lowlinks := Vmap.add v !index !lowlinks;
      incr index;
      stack := v :: !stack;
      on_stack := Vset.add v !on_stack;
      Vset.iter
        (fun w ->
          if not (Vmap.mem w !indices) then begin
            strongconnect w;
            let lv = Vmap.find v !lowlinks and lw = Vmap.find w !lowlinks in
            if lw < lv then lowlinks := Vmap.add v lw !lowlinks
          end
          else if Vset.mem w !on_stack then begin
            let lv = Vmap.find v !lowlinks and iw = Vmap.find w !indices in
            if iw < lv then lowlinks := Vmap.add v iw !lowlinks
          end)
        (adj v g.succ);
      if Vmap.find v !lowlinks = Vmap.find v !indices then begin
        let rec pop acc =
          match !stack with
          | [] -> acc
          | w :: rest ->
            stack := rest;
            on_stack := Vset.remove w !on_stack;
            if V.compare w v = 0 then w :: acc else pop (w :: acc)
        in
        components := pop [] :: !components
      end
    in
    Vmap.iter (fun v _ -> if not (Vmap.mem v !indices) then strongconnect v) g.succ;
    List.rev !components

  (* Transitive closure by DFS from each vertex.  With [reflexive:true] this
     is the reflexive transitive closure zeta* of the paper. *)
  let transitive_closure ?(reflexive = false) g =
    fold_vertices
      (fun v acc ->
        let reach = reachable v g in
        let reach = if reflexive then reach else Vset.remove v reach in
        let reach = if reflexive then Vset.add v reach else reach in
        Vset.fold (fun w acc -> add_edge v w acc) reach acc)
      g
      (fold_vertices (fun v acc -> add_vertex v acc) g empty)

  (* Dense Floyd-Warshall closure over a bit-matrix: an alternative to the
     DFS-based closure, faster on dense graphs; kept for the ablation
     benchmarks and cross-checked against [transitive_closure] in tests. *)
  let transitive_closure_dense ?(reflexive = false) g =
    let vs = Array.of_seq (Vset.to_seq (vertices g)) in
    let n = Array.length vs in
    let index =
      let m = ref Vmap.empty in
      Array.iteri (fun i v -> m := Vmap.add v i !m) vs;
      !m
    in
    let reach = Array.make_matrix n n false in
    fold_edges
      (fun u v () -> reach.(Vmap.find u index).(Vmap.find v index) <- true)
      g ();
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        if reach.(i).(k) then
          for j = 0 to n - 1 do
            if reach.(k).(j) then reach.(i).(j) <- true
          done
      done
    done;
    let acc = ref (fold_vertices (fun v acc -> add_vertex v acc) g empty) in
    for i = 0 to n - 1 do
      if reflexive then acc := add_edge vs.(i) vs.(i) !acc;
      for j = 0 to n - 1 do
        if reach.(i).(j) then acc := add_edge vs.(i) vs.(j) !acc
      done
    done;
    !acc

  (* Transitive reduction of a DAG (the Hasse diagram when the graph is a
     strict partial order): keep edge (u,v) iff there is no path u ~> v of
     length >= 2. *)
  let transitive_reduction g =
    fold_edges
      (fun u v acc ->
        let via_other =
          Vset.exists
            (fun w -> V.compare w v <> 0 && Vset.mem v (reachable w g))
            (Vset.remove v (adj u g.succ))
        in
        if via_other then remove_edge u v acc else acc)
      g g

  (* Maximum flow with unit edge capacities (Edmonds-Karp) and the induced
     minimum edge cut.  Functional security analysis uses minimum cuts to
     identify the smallest sets of functional flows whose protection
     enforces an end-to-end authenticity requirement. *)
  let max_flow_unit ~source ~sink g =
    if V.compare source sink = 0 then
      invalid_arg "max_flow_unit: source equals sink";
    (* residual capacities: 1 on forward edges, 0 on (implicit) backward
       edges; represented as a map of maps *)
    let cap = ref Vmap.empty in
    let get_cap u v =
      match Vmap.find_opt u !cap with
      | None -> 0
      | Some m -> ( match Vmap.find_opt v m with Some c -> c | None -> 0)
    in
    let set_cap u v c =
      let m = match Vmap.find_opt u !cap with Some m -> m | None -> Vmap.empty in
      cap := Vmap.add u (Vmap.add v c m) !cap
    in
    fold_edges (fun u v () -> set_cap u v (get_cap u v + 1)) g ();
    (* BFS for an augmenting path in the residual graph *)
    let neighbours u =
      match Vmap.find_opt u !cap with
      | None -> []
      | Some m -> Vmap.fold (fun v c acc -> if c > 0 then v :: acc else acc) m []
    in
    let rec augment () =
      let prev = ref Vmap.empty in
      let visited = ref (Vset.singleton source) in
      let queue = Queue.create () in
      Queue.add source queue;
      let found = ref false in
      while (not (Queue.is_empty queue)) && not !found do
        let u = Queue.pop queue in
        List.iter
          (fun v ->
            if not (Vset.mem v !visited) then begin
              visited := Vset.add v !visited;
              prev := Vmap.add v u !prev;
              if V.compare v sink = 0 then found := true
              else Queue.add v queue
            end)
          (neighbours u)
      done;
      if not !found then 0
      else begin
        (* push one unit along the path *)
        let rec push v =
          match Vmap.find_opt v !prev with
          | None -> ()
          | Some u ->
            set_cap u v (get_cap u v - 1);
            set_cap v u (get_cap v u + 1);
            push u
        in
        push sink;
        1 + augment ()
      end
    in
    let value = augment () in
    (* the min cut: edges from the source-side of the residual graph to
       the sink side *)
    let side = ref (Vset.singleton source) in
    let queue = Queue.create () in
    Queue.add source queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if not (Vset.mem v !side) then begin
            side := Vset.add v !side;
            Queue.add v queue
          end)
        (neighbours u)
    done;
    let cut =
      fold_edges
        (fun u v acc ->
          if Vset.mem u !side && not (Vset.mem v !side) then (u, v) :: acc
          else acc)
        g []
    in
    (value, List.rev cut)

  let min_edge_cut ~source ~sink g = snd (max_flow_unit ~source ~sink g)

  (* Label-preserving isomorphism by backtracking with degree pruning.
     [label u v] holds when concrete vertex [u] of [g1] may be mapped to
     vertex [v] of [g2] (defaults to always-true). *)
  let isomorphic ?(label = fun _ _ -> true) g1 g2 =
    if nb_vertices g1 <> nb_vertices g2 || nb_edges g1 <> nb_edges g2 then false
    else begin
      let vs1 = Vset.elements (vertices g1) in
      let vs2 = Vset.elements (vertices g2) in
      let compatible u v =
        label u v
        && out_degree u g1 = out_degree v g2
        && in_degree u g1 = in_degree v g2
      in
      (* order vs1 by decreasing degree for earlier pruning *)
      let vs1 =
        List.sort
          (fun a b ->
            Stdlib.compare
              (out_degree b g1 + in_degree b g1)
              (out_degree a g1 + in_degree a g1))
          vs1
      in
      let rec assign mapping used = function
        | [] -> true
        | u :: rest ->
          List.exists
            (fun v ->
              (not (Vset.mem v used))
              && compatible u v
              && (* check consistency with already-mapped neighbours *)
              Vmap.for_all
                (fun u' v' ->
                  Bool.equal (mem_edge u u' g1) (mem_edge v v' g2)
                  && Bool.equal (mem_edge u' u g1) (mem_edge v' v g2))
                mapping
              && assign (Vmap.add u v mapping) (Vset.add v used) rest)
            vs2
      in
      assign Vmap.empty Vset.empty vs1
    end

  let pp ppf g =
    let pp_edge ppf (u, v) = Fmt.pf ppf "%a -> %a" V.pp u V.pp v in
    Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_edge) (edges g)
end
