(** Elaboration of parsed specifications into APA models (tool path) and
    functional SoS models (manual path).

    All elaboration functions raise {!Loc.Error} on semantic errors. *)

module Term = Fsa_term.Term
module Apa = Fsa_apa.Apa
module Sos = Fsa_model.Sos

type env = {
  components : (string * Ast.component_decl) list;
  instances : Ast.instance_decl list;
  clusters : Ast.cluster_decl list;
  models : (string * Ast.model_decl) list;
  soses : Ast.sos_decl list;
  checks : Ast.check_decl list;
}

val env_of_spec : Ast.t -> env

val term_of_sterm : self:Term.t option -> loc:Loc.t -> Ast.sterm -> Term.t

val compile_cond :
  self:Term.t option -> loc:Loc.t -> Ast.cond -> Term.Subst.t -> bool

val build_instance : env -> Ast.instance_decl -> Apa.t

val apa_of_spec : ?name:string -> Ast.t -> Apa.t
(** Compose all declared instances into one APA, identifying shared state
    components per the cluster declarations. *)

val component_of_model :
  Ast.model_decl -> alias:string -> index:int option -> Fsa_model.Component.t

val sos_list : Ast.t -> Sos.t list
val sos_of_spec : Ast.t -> string -> Sos.t

val patterns_of_spec : Ast.t -> (string * Fsa_mc.Pattern.t) list
(** The spec's [check] declarations as named property patterns. *)

(** {1 Located APA skeleton}

    The static shape of the elaborated APA — takes, puts and initial
    contents as first-order terms — with the source location of every
    construct.  [Fsa_check] analyses this instead of {!Apa.t}, whose
    guards and labels are opaque closures without positions. *)

type located_take = {
  lt_comp : string;
  lt_pat : Term.t;
  lt_consume : bool;
  lt_loc : Loc.t;
}

type located_put = { lp_comp : string; lp_term : Term.t; lp_loc : Loc.t }

type located_rule = {
  lr_name : string;  (** full APA rule name, e.g. [V1_send] *)
  lr_instance : string;
  lr_component : string;  (** declaring component, e.g. [Vehicle] *)
  lr_takes : located_take list;
  lr_puts : located_put list;
  lr_guarded : bool;  (** has a non-trivial [when] clause *)
  lr_guard_vars : string list;  (** variables occurring in the guard *)
  lr_loc : Loc.t;
}

type skeleton = {
  sk_components : (string * Term.Set.t * Loc.t) list;
      (** renamed state components with initial contents, located at the
          declaring component *)
  sk_rules : located_rule list;
}

val skeleton_of_spec : Ast.t -> skeleton
(** The located skeleton of all declared instances, shared components
    identified as in {!apa_of_spec}.  Unlike {!apa_of_spec} it accepts a
    specification with no instances (the skeleton is then empty). *)

val guard_signatures : Ast.t -> (string * string) list
(** Canonical guard signatures of every non-trivially guarded rule, by
    full APA rule name.  [self] is rendered as a fixed placeholder, so
    two instances of the same component template get {e equal} strings
    for their (self-relative) guards — the attestation {!Fsa_sym.detect}
    needs to treat such guards as equivalent up to instance renaming.
    Builtin predicate calls are included by name; their interpretations
    are shared by all instances, so equal signatures still mean
    equivalent guards provided the builtins are not sensitive to
    instance identities flowing in as data. *)

(** {1 Canonical model digests}

    Content addresses for the analysis cache ({!Fsa_store.Store}). *)

type digest_part = [ `Apa | `Checks | `Models ]
(** Which halves of the specification the digest covers: the elaborated
    APA model (instances, components, clusters), the behavioural [check]
    declarations, and the functional models ([model]/[sos]). *)

val digest_of_spec : parts:digest_part list -> Ast.t -> string
(** Hex digest of a canonical, location-free rendering of the selected
    parts of the {e elaborated} model.  Stable across re-parses, comment
    and layout edits, permuted declarations and the exploration job
    count; sensitive to initial contents, takes/puts, guard structure
    and cluster-induced component renamings.
    @raise Loc.Error on specs that do not elaborate. *)
