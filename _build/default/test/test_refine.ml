(* Tests for Fsa_refine and the underlying max-flow/min-cut. *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module Auth = Fsa_requirements.Auth
module Refine = Fsa_refine.Refine
module S = Fsa_vanet.Scenario
module Evita = Fsa_vanet.Evita

module G = Fsa_graph.Digraph.Make (struct
  type t = int

  let compare = Int.compare
  let pp = Fmt.int
end)

(* ------------------------------------------------------------------ *)
(* Max-flow / min-cut                                                  *)
(* ------------------------------------------------------------------ *)

let test_max_flow_chain () =
  let g = G.of_edges [ (1, 2); (2, 3) ] in
  let value, cut = G.max_flow_unit ~source:1 ~sink:3 g in
  Alcotest.(check int) "chain capacity" 1 value;
  Alcotest.(check int) "cut size" 1 (List.length cut)

let test_max_flow_parallel () =
  (* two disjoint paths: capacity 2 *)
  let g = G.of_edges [ (1, 2); (2, 4); (1, 3); (3, 4) ] in
  let value, cut = G.max_flow_unit ~source:1 ~sink:4 g in
  Alcotest.(check int) "parallel capacity" 2 value;
  Alcotest.(check int) "cut severs both" 2 (List.length cut)

let test_max_flow_bottleneck () =
  (* diamond feeding a single bottleneck edge *)
  let g = G.of_edges [ (1, 2); (1, 3); (2, 4); (3, 4); (4, 5) ] in
  let value, cut = G.max_flow_unit ~source:1 ~sink:5 g in
  Alcotest.(check int) "bottleneck capacity" 1 value;
  Alcotest.(check (list (pair int int))) "cut is the bottleneck" [ (4, 5) ] cut

let test_max_flow_disconnected () =
  let g = G.of_edges ~vertices:[ 1; 9 ] [ (1, 2) ] in
  let value, cut = G.max_flow_unit ~source:1 ~sink:9 g in
  Alcotest.(check int) "no path" 0 value;
  Alcotest.(check int) "empty cut" 0 (List.length cut)

let test_min_cut_validity () =
  (* removing the cut must disconnect source from sink — on a few
     hand-picked graphs *)
  let graphs =
    [ G.of_edges [ (1, 2); (2, 3); (1, 3) ];
      G.of_edges [ (1, 2); (2, 4); (1, 3); (3, 4); (2, 3) ];
      G.of_edges [ (1, 2); (2, 3); (3, 4); (1, 4); (2, 4) ] ]
  in
  List.iter
    (fun g ->
      let cut = G.min_edge_cut ~source:1 ~sink:(G.Vset.max_elt (G.vertices g)) g in
      let pruned = List.fold_left (fun g (u, v) -> G.remove_edge u v g) g cut in
      let sink = G.Vset.max_elt (G.vertices g) in
      Alcotest.(check bool) "cut disconnects" false
        (G.Vset.mem sink (G.reachable 1 pruned)))
    graphs

(* ------------------------------------------------------------------ *)
(* Refinement on the scenario                                          *)
(* ------------------------------------------------------------------ *)

let w = Agent.Symbolic "w"

let sense_req =
  Auth.make
    ~cause:(S.sense (Agent.Concrete 1))
    ~effect:(S.show w) ~stakeholder:(S.driver w)

let test_simple_paths () =
  let paths = Refine.simple_paths S.two_vehicles (S.sense (Agent.Concrete 1)) (S.show w) in
  Alcotest.(check int) "single path in the two-vehicle model" 1
    (List.length paths);
  match paths with
  | [ path ] ->
    Alcotest.(check int) "path length" 4 (List.length path);
    Alcotest.(check string) "starts at the sensing" "sense"
      (Action.label (List.hd path));
    Alcotest.(check string) "ends at the display" "show"
      (Action.label (List.nth path 3))
  | _ -> Alcotest.fail "expected one path"

let test_channels () =
  let surface =
    Refine.channels S.two_vehicles (S.sense (Agent.Concrete 1)) (S.show w)
  in
  (* sense->send, send->rec (external), rec->show *)
  Alcotest.(check int) "three flows on the path" 3 (List.length surface);
  Alcotest.(check int) "exactly one external channel" 1
    (List.length (List.filter Fsa_model.Flow.is_external surface))

let test_min_cut_requirement () =
  let cut = Refine.min_cut S.two_vehicles (S.sense (Agent.Concrete 1)) (S.show w) in
  (* the path is a chain: any single flow suffices; minimality = 1 *)
  Alcotest.(check int) "single protection point" 1 (List.length cut)

let test_hop_by_hop () =
  let paths =
    Refine.simple_paths S.two_vehicles (S.sense (Agent.Concrete 1)) (S.show w)
  in
  let obligations = Refine.hop_by_hop S.two_vehicles sense_req (List.hd paths) in
  Alcotest.(check int) "three hop obligations" 3 (List.length obligations);
  (* intermediate stakeholders are the receiving components *)
  (match obligations with
  | [ o1; o2; o3 ] ->
    Alcotest.(check string) "first hop owed to the CU" "CU_1"
      (Agent.to_string (Auth.stakeholder o1.Refine.ob_requirement));
    Alcotest.(check string) "second hop owed to the receiving CU" "CU_w"
      (Agent.to_string (Auth.stakeholder o2.Refine.ob_requirement));
    Alcotest.(check string) "final hop keeps the driver" "D_w"
      (Agent.to_string (Auth.stakeholder o3.Refine.ob_requirement));
    Alcotest.(check bool) "second hop crosses the external channel" true
      (match o2.Refine.ob_flow with
      | Some f -> Fsa_model.Flow.is_external f
      | None -> false)
  | _ -> Alcotest.fail "expected three obligations");
  (* the end-to-end alternative is the original requirement *)
  let e2e = Refine.end_to_end sense_req in
  Alcotest.(check bool) "end-to-end keeps the requirement" true
    (Auth.equal e2e.Refine.ob_requirement sense_req)

let test_plan_evita () =
  (* the log output depends on six inputs: its plan must expose several
     paths and a cut no larger than the surface *)
  let req =
    Auth.make
      ~cause:(Action.of_string_exn "esp_sense(ESP)")
      ~effect:(Action.of_string_exn "log_write(LOG)")
      ~stakeholder:(Agent.unindexed "Backend")
  in
  let plan = Refine.plan Evita.model req in
  Alcotest.(check bool) "at least one path" true (plan.Refine.p_paths <> []);
  Alcotest.(check bool) "cut within surface" true
    (List.for_all
       (fun f -> List.exists (Fsa_model.Flow.equal f) plan.Refine.p_surface)
       plan.Refine.p_min_cut);
  Alcotest.(check bool) "cut no larger than any path's flow count" true
    (List.length plan.Refine.p_min_cut
     <= List.length (List.hd plan.Refine.p_paths) - 1);
  (* removing the cut disconnects cause from effect *)
  let module AG = Fsa_model.Action_graph in
  let remaining =
    List.filter
      (fun f -> not (List.exists (Fsa_model.Flow.equal f) plan.Refine.p_min_cut))
      (Fsa_model.Sos.all_flows Evita.model)
  in
  let g = AG.of_flows remaining in
  Alcotest.(check bool) "cut disconnects the dependency" false
    (AG.G.mem_vertex (Auth.cause req) g
     && AG.G.Vset.mem (Auth.effect req) (AG.G.reachable (Auth.cause req) g));
  (* rendering *)
  Alcotest.(check bool) "plan renders" true
    (String.length (Fmt.str "%a" Refine.pp_plan plan) > 0)

let test_multiple_paths_hazard () =
  (* hazard information reaches the log both directly and... the EVITA
     model routes hazard to log directly; esp_sense has a single route.
     pedal_press -> brake goes through one path; gps reaches v2x_pack and
     hmi and log and telem and dash via the gateway: several sinks, one
     route each.  Check a genuinely multi-path case: 1->log via fusion
     with hazard_publish having a single edge to log_merge; so instead
     check paths from gps_acquire to v2x_send vs hmi_show are disjoint
     after the gateway *)
  let gps = Action.of_string_exn "gps_acquire(GPS)" in
  let v2x = Action.of_string_exn "v2x_send(CU)" in
  let paths = Refine.simple_paths Evita.model gps v2x in
  Alcotest.(check int) "one route to v2x" 1 (List.length paths);
  let cut = Refine.min_cut Evita.model gps v2x in
  Alcotest.(check int) "cut of a chain is one flow" 1 (List.length cut)

let suite =
  [ Alcotest.test_case "max flow: chain" `Quick test_max_flow_chain;
    Alcotest.test_case "max flow: parallel" `Quick test_max_flow_parallel;
    Alcotest.test_case "max flow: bottleneck" `Quick test_max_flow_bottleneck;
    Alcotest.test_case "max flow: disconnected" `Quick test_max_flow_disconnected;
    Alcotest.test_case "min cut validity" `Quick test_min_cut_validity;
    Alcotest.test_case "simple paths" `Quick test_simple_paths;
    Alcotest.test_case "channels (attack surface)" `Quick test_channels;
    Alcotest.test_case "min cut of a requirement" `Quick test_min_cut_requirement;
    Alcotest.test_case "hop-by-hop decomposition" `Quick test_hop_by_hop;
    Alcotest.test_case "plan on EVITA" `Quick test_plan_evita;
    Alcotest.test_case "multi-path analysis" `Quick test_multiple_paths_hazard ]
