examples/platoon.mli:
