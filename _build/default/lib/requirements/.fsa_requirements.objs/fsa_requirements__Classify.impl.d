lib/requirements/classify.ml: Auth Fmt Fsa_model Fsa_term List String
