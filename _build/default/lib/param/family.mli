(** Uniformly parameterised families of SoS instances.

    Finite-state evidence for parameterised requirement statements such as
    χᵢ = χᵢ₋₁ ∪ {(pos(GPS_i, pos), show(HMI_w, warn))}. *)

module Action = Fsa_term.Action
module Auth = Fsa_requirements.Auth
module Sos = Fsa_model.Sos

type mismatch = {
  parameter : int;
  expected : Auth.t list;
  actual : Auth.t list;
}

val pp_mismatch : mismatch Fmt.t

val check_schema :
  ?stakeholder:(Action.t -> Fsa_term.Agent.t) ->
  family:(int -> Sos.t) ->
  schema:(int -> Auth.t list) ->
  int list ->
  mismatch list

val is_uniform :
  ?stakeholder:(Action.t -> Fsa_term.Agent.t) ->
  family:(int -> Sos.t) ->
  schema:(int -> Auth.t list) ->
  int list ->
  bool

val increments :
  ?stakeholder:(Action.t -> Fsa_term.Agent.t) ->
  family:(int -> Sos.t) ->
  int list ->
  (int * Auth.t list) list
(** Requirements added between consecutive instances; [family (n - 1)]
    must be defined for every [n] in the range. *)

val incrementally_uniform :
  ?stakeholder:(Action.t -> Fsa_term.Agent.t) ->
  family:(int -> Sos.t) ->
  int list ->
  bool
(** Each step only adds requirements, all of one action shape. *)
