examples/tool_assisted.mli:
