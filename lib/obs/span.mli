(** Wall-time spans with nesting and a propagatable trace context,
    exported as human-readable summaries or Chrome trace_event JSON.

    Spans record only while {!Metrics.enabled} holds; otherwise [with_]
    runs its body directly.  The clock is pluggable ({!set_clock}) so
    tests can make recorded timings deterministic.

    [with_] may be called from any domain: the completed-span buffer is
    mutex-protected, and the trace context (trace id, innermost open
    span, nesting depth) is tracked per domain, so concurrent workers
    (e.g. server request handlers) record correctly nested spans without
    interfering with each other.  {!with_trace} roots a context for one
    request; {!current_context} and {!with_context} carry it into
    spawned domains so their spans join the same trace tree. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_ns : int64;
  ev_dur_ns : int64;
  ev_depth : int;  (** nesting depth, 0 = top-level *)
  ev_seq : int;  (** completion sequence number *)
  ev_trace : string;  (** trace id, [""] outside any {!with_trace} *)
  ev_id : int;  (** span id, unique process-wide *)
  ev_parent : int;  (** enclosing span's id, [0] for a root span *)
  ev_domain : int;  (** id of the domain that recorded the span *)
}

type context = { ctx_trace : string; ctx_parent : int; ctx_depth : int }
(** A point in a trace tree, capturable in one domain and adoptable in
    another. *)

val set_clock : (unit -> int64) -> unit
(** Replace the nanosecond clock (tests inject a fake one here). *)

val use_default_clock : unit -> unit

val now_ns : unit -> int64
(** Current clock value: nanoseconds, never decreasing. *)

val with_ : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f ()] inside a span named [name]; the span is
    recorded when [f] returns or raises.  Spans nest. *)

val with_trace : trace_id:string -> (unit -> 'a) -> 'a
(** [with_trace ~trace_id f] runs [f ()] with the calling domain's trace
    context rooted at [trace_id]: spans recorded inside carry
    [ev_trace = trace_id], and the previous context is restored when [f]
    returns or raises.  Unlike {!with_}, the context switch happens even
    while recording is disabled, so a trace id set before enabling
    observability is not lost. *)

val current_trace : unit -> string
(** The calling domain's trace id ([""] when outside any trace). *)

val current_context : unit -> context
(** Capture the calling domain's trace context, typically just before
    [Domain.spawn]. *)

val with_context : context -> (unit -> 'a) -> 'a
(** Adopt a captured context for the duration of [f]: spans recorded by
    the calling domain attach under [ctx_parent] in [ctx_trace]'s tree.
    Restores the previous context afterwards. *)

val set_phase_hook : ([ `Start | `End ] -> string -> int64 -> unit) -> unit
(** Install a callback fired at every span boundary (while recording is
    enabled) with the span name and the already-read timestamp.  Used by
    {!Recorder} to mirror span boundaries into the flight-recorder ring;
    at most one hook is active. *)

val events : unit -> event list
(** Completed spans in chronological order (start time, then depth, then
    completion order). *)

val events_for_trace : string -> event list
(** The completed spans carrying the given trace id, in chronological
    order. *)

val reset : unit -> unit

val to_chrome_json : unit -> string
(** The recorded spans as a Chrome trace_event JSON array — one complete
    ("ph":"X") event per line, timestamps in microseconds, the recording
    domain as [tid], trace/span/parent ids under [args] when the span
    belongs to a trace.  Open the file in chrome://tracing or
    {{:https://ui.perfetto.dev}Perfetto}. *)

val us_of_ns : int64 -> string
(** Nanoseconds rendered as fixed-point microseconds ("1234.567"):
    deterministic and valid as a JSON number.  Shared with {!Recorder}. *)

val pp_dur : int64 Fmt.t
(** Human-readable duration (ns/us/ms/s). *)

val pp_summary : unit Fmt.t
(** Indented per-span duration summary. *)
