(* Process-wide metrics registry.

   Counters, gauges and fixed-bucket histograms, registered by name in a
   single global table so that library code can declare its instruments at
   module-initialisation time and CLI/bench drivers can dump everything at
   the end of a run.  Recording is O(1) (a field mutation, or a binary
   search over the bucket bounds for histograms) and is gated on a single
   process-wide [enabled] flag: with observability off, every record
   operation is one load and one branch, so instrumented hot paths cost
   nothing measurable.

   The dump formats are deterministic: instruments are sorted by name and
   numbers are printed in a locale-independent way, so metric dumps can be
   compared across runs and asserted on in tests. *)

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* Counters and gauges are atomic so that worker domains (parallel
   state-space exploration, server request workers) can record into
   shared instruments without a lock.  Registration and histogram
   recording are serialised by [lock]: both are far off any hot path
   (registration happens once per instrument, a histogram observation
   once per request or state expansion), and taking the uncontended
   mutex keeps them safe from any domain. *)
type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t }

type histogram = {
  h_name : string;
  h_bounds : float array;  (* strictly increasing upper bounds *)
  h_counts : int array;    (* length = bounds + 1; last bucket = overflow *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %s is already registered with a different kind"
       name)

let counter name =
  Mutex.protect lock @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some _ -> kind_error name
  | None ->
    let c = { c_name = name; c_value = Atomic.make 0 } in
    Hashtbl.replace registry name (Counter c);
    c

let incr ?(by = 1) c =
  if !enabled_flag then ignore (Atomic.fetch_and_add c.c_value by)

let counter_value c = Atomic.get c.c_value
let counter_name c = c.c_name

let gauge name =
  Mutex.protect lock @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some _ -> kind_error name
  | None ->
    let g = { g_name = name; g_value = Atomic.make 0. } in
    Hashtbl.replace registry name (Gauge g);
    g

let set_gauge g v = if !enabled_flag then Atomic.set g.g_value v

let set_gauge_max g v =
  if !enabled_flag then begin
    let rec raise_to () =
      let cur = Atomic.get g.g_value in
      if v > cur && not (Atomic.compare_and_set g.g_value cur v) then
        raise_to ()
    in
    raise_to ()
  end

let gauge_value g = Atomic.get g.g_value
let gauge_name g = g.g_name

(* 1-2-5 decades: a serviceable default for counts and sizes. *)
let default_buckets =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000. |]

let histogram ?(buckets = default_buckets) name =
  Mutex.protect lock @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some _ -> kind_error name
  | None ->
    let n = Array.length buckets in
    for i = 1 to n - 1 do
      if buckets.(i - 1) >= buckets.(i) then
        invalid_arg
          (Printf.sprintf "Metrics: %s bucket bounds must be strictly increasing"
             name)
    done;
    let h =
      { h_name = name;
        h_bounds = Array.copy buckets;
        h_counts = Array.make (n + 1) 0;
        h_sum = 0.;
        h_count = 0 }
    in
    Hashtbl.replace registry name (Histogram h);
    h

(* Index of the first bound >= v (cumulative-le convention); [n] is the
   overflow bucket. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h v =
  if !enabled_flag then
    Mutex.protect lock (fun () ->
        let i = bucket_index h.h_bounds v in
        h.h_counts.(i) <- h.h_counts.(i) + 1;
        h.h_sum <- h.h_sum +. v;
        h.h_count <- h.h_count + 1)

let histogram_counts h = Array.copy h.h_counts
let histogram_sum h = h.h_sum
let histogram_count h = h.h_count
let histogram_name h = h.h_name

(* Bucket-interpolated quantile: find the bucket holding the rank-th
   observation and interpolate linearly between its bounds.  Values in
   the overflow bucket are reported as the last finite bound — the
   histogram carries no upper limit for them. *)
let quantile h q =
  Mutex.protect lock @@ fun () ->
  let total = h.h_count in
  if total = 0 then 0.
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let rank = q *. float_of_int total in
    let n = Array.length h.h_bounds in
    if n = 0 then h.h_sum /. float_of_int total
    else
    let rec go i cum =
      if i > n then h.h_bounds.(n - 1)
      else
        let cum' = cum +. float_of_int h.h_counts.(i) in
        if cum' >= rank && h.h_counts.(i) > 0 then
          if i = n then h.h_bounds.(n - 1)
          else
            let lo = if i = 0 then 0. else h.h_bounds.(i - 1) in
            let hi = h.h_bounds.(i) in
            lo +. ((hi -. lo) *. ((rank -. cum) /. float_of_int h.h_counts.(i)))
        else go (i + 1) cum'
    in
    go 0 0.
  end

let reset () =
  Mutex.protect lock @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Atomic.set c.c_value 0
      | Gauge g -> Atomic.set g.g_value 0.
      | Histogram h ->
        Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
        h.h_sum <- 0.;
        h.h_count <- 0)
    registry

let sorted_metrics () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () =
  List.filter_map
    (function name, Counter c -> Some (name, Atomic.get c.c_value) | _ -> None)
    (sorted_metrics ())

let gauges () =
  List.filter_map
    (function name, Gauge g -> Some (name, Atomic.get g.g_value) | _ -> None)
    (sorted_metrics ())

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)
(* ------------------------------------------------------------------ *)

let json_escape b s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_float v =
  if not (Float.is_finite v) then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let add_fields b ~add_value fields =
  let first = ref true in
  List.iter
    (fun (name, v) ->
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Buffer.add_string b "    \"";
      json_escape b name;
      Buffer.add_string b "\": ";
      add_value b v)
    fields

let to_json () =
  let b = Buffer.create 1024 in
  let metrics = sorted_metrics () in
  let counters =
    List.filter_map
      (function name, Counter c -> Some (name, c) | _ -> None)
      metrics
  and gauges =
    List.filter_map
      (function name, Gauge g -> Some (name, g) | _ -> None)
      metrics
  and histograms =
    List.filter_map
      (function name, Histogram h -> Some (name, h) | _ -> None)
      metrics
  in
  Buffer.add_string b "{\n  \"counters\": {\n";
  add_fields b counters ~add_value:(fun b c ->
      Buffer.add_string b (string_of_int (Atomic.get c.c_value)));
  Buffer.add_string b "\n  },\n  \"gauges\": {\n";
  add_fields b gauges ~add_value:(fun b g ->
      Buffer.add_string b (json_float (Atomic.get g.g_value)));
  Buffer.add_string b "\n  },\n  \"histograms\": {\n";
  add_fields b histograms ~add_value:(fun b h ->
      Buffer.add_string b "{\"bounds\": [";
      Array.iteri
        (fun i bound ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_string b (json_float bound))
        h.h_bounds;
      Buffer.add_string b "], \"counts\": [";
      Array.iteri
        (fun i c ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_string b (string_of_int c))
        h.h_counts;
      Buffer.add_string b "], \"sum\": ";
      Buffer.add_string b (json_float h.h_sum);
      Buffer.add_string b ", \"count\": ";
      Buffer.add_string b (string_of_int h.h_count);
      Buffer.add_string b "}");
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b

(* Prometheus text exposition format.  Metric names may not contain
   dots, so "server.latency_ms" is exposed as "server_latency_ms";
   histogram buckets follow the cumulative-le convention the registry
   already uses internally. *)
let prometheus_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prometheus_float v =
  if not (Float.is_finite v) then if v > 0. then "+Inf" else "-Inf"
  else json_float v

let to_prometheus () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      let pname = prometheus_name name in
      match m with
      | Counter c ->
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s counter\n%s %d\n" pname pname
             (Atomic.get c.c_value))
      | Gauge g ->
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s gauge\n%s %s\n" pname pname
             (prometheus_float (Atomic.get g.g_value)))
      | Histogram h ->
        let bounds, counts, sum, count =
          Mutex.protect lock (fun () ->
              (h.h_bounds, Array.copy h.h_counts, h.h_sum, h.h_count))
        in
        Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" pname);
        let cum = ref 0 in
        Array.iteri
          (fun i bound ->
            cum := !cum + counts.(i);
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" pname
                 (prometheus_float bound) !cum))
          bounds;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname count);
        Buffer.add_string b
          (Printf.sprintf "%s_sum %s\n" pname (prometheus_float sum));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" pname count))
    (sorted_metrics ());
  Buffer.contents b

let pp_summary ppf () =
  let metrics = sorted_metrics () in
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> Fmt.pf ppf "%-40s %12d@," name (Atomic.get c.c_value)
      | Gauge g ->
        Fmt.pf ppf "%-40s %12s@," name (json_float (Atomic.get g.g_value))
      | Histogram h ->
        Fmt.pf ppf "%-40s count=%d sum=%s@," name h.h_count
          (json_float h.h_sum))
    metrics;
  Fmt.pf ppf "@]"
