lib/model/action_graph.mli: Flow Fsa_graph Fsa_order Fsa_term
