(** Graphs and partial orders over actions. *)

module V : Fsa_graph.Digraph.VERTEX with type t = Fsa_term.Action.t
module G : Fsa_graph.Digraph.S with type vertex = Fsa_term.Action.t

module P : sig
  include module type of Fsa_order.Poset.Make (G)
end

val of_flows : Flow.t list -> G.t
(** The functional flow graph spanned by a list of flows. *)

val dot :
  ?name:string -> ?highlight:Fsa_term.Action.t list -> Flow.t list -> string
(** DOT rendering: external flows dashed, policy flows annotated. *)
