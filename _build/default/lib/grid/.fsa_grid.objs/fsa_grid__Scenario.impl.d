lib/grid/scenario.ml: Fsa_model Fsa_term List Printf
