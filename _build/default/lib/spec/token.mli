(** Tokens of the specification language. *)

type t =
  | Ident of string
  | Int of int
  | String of string
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Dot
  | Eq
  | Eq_eq
  | Bang_eq
  | Arrow
  | And_and
  | Or_or
  | Bang
  | Colon
  | Eof

val pp : t Fmt.t
val equal : t -> t -> bool
