lib/requirements/generalise.mli: Auth Fmt Fsa_term
