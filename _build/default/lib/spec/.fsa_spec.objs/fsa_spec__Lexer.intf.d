lib/spec/lexer.mli: Loc Token
