(* Finite partial orders, constructed from the functional flow relation of a
   system instance.  Following Sect. 4.4 of the paper: the functional flow
   among actions is an ordering relation zeta on the action set; its
   reflexive transitive closure zeta* is a partial order when the flow graph
   is loop-free; restricting zeta* to pairs of minimal and maximal elements
   yields the relation chi from which authenticity requirements are read. *)

module Make (G : Fsa_graph.Digraph.S) = struct
  module Eset = G.Vset
  module Emap = G.Vmap

  type element = G.vertex

  (* [strict] is the strict order (irreflexive transitive closure) as a
     digraph; [base] is the original generating relation (zeta). *)
  type t = { base : G.t; strict : G.t }

  type error = Cycle of element list

  let pp_error ppf (Cycle c) =
    Fmt.pf ppf "the functional flow relation has a cycle: %a"
      Fmt.(list ~sep:(any " -> ") G.pp_vertex)
      c

  let of_graph base =
    match G.find_cycle base with
    | Some cycle -> Error (Cycle cycle)
    | None -> Ok { base; strict = G.transitive_closure ~reflexive:false base }

  let of_relation ?(elements = []) pairs =
    of_graph (G.of_edges ~vertices:elements pairs)

  let of_graph_exn g =
    match of_graph g with
    | Ok t -> t
    | Error e -> invalid_arg (Fmt.str "Poset.of_graph_exn: %a" pp_error e)

  let of_relation_exn ?elements pairs =
    match of_relation ?elements pairs with
    | Ok t -> t
    | Error e -> invalid_arg (Fmt.str "Poset.of_relation_exn: %a" pp_error e)

  let base t = t.base
  let strict t = t.strict
  let elements t = G.vertices t.strict
  let cardinal t = G.nb_vertices t.strict

  let lt x y t = G.mem_edge x y t.strict
  let leq x y t = G.compare_vertex x y = 0 || lt x y t

  let comparable x y t = leq x y t || leq y x t

  (* zeta* as an explicit list of pairs, reflexive pairs included — this is
     exactly the relation displayed in Example 3 of the paper. *)
  let closure_pairs t =
    let refl = Eset.fold (fun v acc -> (v, v) :: acc) (elements t) [] in
    List.rev_append refl (G.edges t.strict)
    |> List.sort (fun (a, b) (c, d) ->
           let c1 = G.compare_vertex a c in
           if c1 <> 0 then c1 else G.compare_vertex b d)

  let minima t = G.sources t.strict
  let maxima t = G.sinks t.strict

  (* chi = zeta* restricted to minima x maxima (Sect. 4.4).  A minimal
     element that is also maximal (an isolated action) induces the reflexive
     pair (x, x); the paper's system instances do not contain such actions,
     but we keep the reflexive pair for faithfulness to the definition of
     chi over zeta* (which is reflexive). *)
  let chi ?(include_isolated = false) t =
    let mins = minima t and maxs = maxima t in
    let direct =
      Eset.fold
        (fun x acc ->
          Eset.fold
            (fun y acc -> if lt x y t then (x, y) :: acc else acc)
            maxs acc)
        mins []
    in
    let pairs =
      if include_isolated then
        Eset.fold
          (fun x acc -> if Eset.mem x maxs then (x, x) :: acc else acc)
          mins direct
      else direct
    in
    List.sort
      (fun (a, b) (c, d) ->
        let c1 = G.compare_vertex a c in
        if c1 <> 0 then c1 else G.compare_vertex b d)
      pairs

  let hasse t = G.transitive_reduction t.strict

  let covers x t = G.succ x (hasse t)

  let downset x t = Eset.add x (G.co_reachable x t.strict)
  let upset x t = Eset.add x (G.reachable x t.strict)

  (* Height: length (number of elements) of a longest chain. *)
  let height t =
    match G.topological_sort t.strict with
    | None -> assert false (* acyclic by construction *)
    | Some order ->
      let depth =
        List.fold_left
          (fun depth v ->
            let best =
              Eset.fold
                (fun p acc -> max acc (Emap.find p depth))
                (G.pred v t.strict) 0
            in
            Emap.add v (best + 1) depth)
          Emap.empty order
      in
      Emap.fold (fun _ d acc -> max acc d) depth 0

  (* Width (size of a maximum antichain) via Dilworth's theorem: a minimum
     chain cover has [n - m] chains where [m] is the size of a maximum
     matching in the split bipartite graph of the strict order. *)
  let width t =
    let elts = Array.of_seq (Eset.to_seq (elements t)) in
    let n = Array.length elts in
    if n = 0 then 0
    else begin
      let adj u =
        let rec collect v acc =
          if v < 0 then acc
          else
            collect (v - 1) (if lt elts.(u) elts.(v) t then v :: acc else acc)
        in
        collect (n - 1) []
      in
      let matching = Fsa_graph.Matching.maximum ~left:n ~right:n ~adj in
      n - Fsa_graph.Matching.size matching
    end

  (* --- Order ideals (down-sets) ------------------------------------------
     The states of the reachability graph of a 1-safe "every action happens
     once" process are exactly the order ideals of its event poset, which is
     how the paper's published state counts (13 and 169) are validated. *)

  let check_ideal_size n =
    if n > 62 then
      invalid_arg
        (Printf.sprintf
           "Poset: ideal enumeration uses bit masks and supports at most 62 \
            elements (got %d)" n)

  (* Bitmask representation over a fixed element enumeration. *)
  let ideal_context t =
    let elts = Array.of_seq (Eset.to_seq (elements t)) in
    let n = Array.length elts in
    check_ideal_size n;
    let idx =
      snd
        (Array.fold_left
           (fun (i, m) v -> (i + 1, Emap.add v i m))
           (0, Emap.empty) elts)
    in
    let pred_mask = Array.make n 0 in
    Array.iteri
      (fun i v ->
        Eset.iter
          (fun p -> pred_mask.(i) <- pred_mask.(i) lor (1 lsl Emap.find p idx))
          (G.pred v t.strict))
      elts;
    (elts, pred_mask)

  (* Enumerate all ideals as bit masks, by BFS over the ideal lattice:
     successors of ideal I are I + {e} for each enabled e (all predecessors
     already in I). *)
  let ideal_masks t =
    let elts, pred_mask = ideal_context t in
    let n = Array.length elts in
    let seen = Hashtbl.create 256 in
    let rec go acc = function
      | [] -> acc
      | mask :: rest ->
        if Hashtbl.mem seen mask then go acc rest
        else begin
          Hashtbl.replace seen mask ();
          let next = ref rest in
          for e = 0 to n - 1 do
            if mask land (1 lsl e) = 0 && pred_mask.(e) land mask = pred_mask.(e)
            then next := (mask lor (1 lsl e)) :: !next
          done;
          go (mask :: acc) !next
        end
    in
    (elts, go [] [ 0 ])

  let count_ideals t =
    let _, masks = ideal_masks t in
    List.length masks

  let ideals t =
    let elts, masks = ideal_masks t in
    let n = Array.length elts in
    List.rev_map
      (fun mask ->
        let rec collect i acc =
          if i < 0 then acc
          else collect (i - 1) (if mask land (1 lsl i) <> 0 then elts.(i) :: acc else acc)
        in
        collect (n - 1) [])
      masks

  (* Number of linear extensions = number of maximal paths in the ideal
     lattice from the empty ideal to the full set, computed by memoised
     recursion on ideals. *)
  let count_linear_extensions t =
    let elts, pred_mask = ideal_context t in
    let n = Array.length elts in
    let full = (1 lsl n) - 1 in
    let memo = Hashtbl.create 256 in
    let rec paths mask =
      if mask = full then 1
      else
        match Hashtbl.find_opt memo mask with
        | Some v -> v
        | None ->
          let total = ref 0 in
          for e = 0 to n - 1 do
            if mask land (1 lsl e) = 0 && pred_mask.(e) land mask = pred_mask.(e)
            then total := !total + paths (mask lor (1 lsl e))
          done;
          Hashtbl.replace memo mask !total;
          !total
    in
    paths 0

  let pp ppf t =
    Fmt.pf ppf "@[<v>poset (%d elements)@,%a@]" (cardinal t) G.pp (hasse t)
end
