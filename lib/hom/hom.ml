(* Alphabetic language homomorphisms and abstraction-based analysis
   (Sect. 5.5 of the paper).

   Behaviour abstraction of an APA is formalised by alphabetic language
   homomorphisms h : Sigma* -> Sigma'*: certain transitions are ignored
   (mapped to the empty word) and others are renamed.  Applying h to a
   reachability graph yields an NFA with epsilon transitions whose
   determinised, minimised form is the "minimal automaton for the
   homomorphic image" that the SH verification tool computes and displays
   (Figs. 10 and 11). *)

module Action = Fsa_term.Action
module Lts = Fsa_lts.Lts

let log_src =
  Logs.Src.create "fsa.hom" ~doc:"homomorphic abstraction and minimisation"

module Log = (val Logs.src_log log_src)

module Metrics = Fsa_obs.Metrics
module Span = Fsa_obs.Span

let m_minimal_automata = Metrics.counter "hom.minimal_automata"
let m_dependence_tests = Metrics.counter "hom.dependence_tests"
let m_shared_builds = Metrics.counter "hom.shared_builds"
let m_early_decisions = Metrics.counter "hom.early_decisions"

module Action_label = struct
  type t = Action.t

  let compare = Action.compare
  let pp = Action.pp
end

module A = Fsa_automata.Automata.Make (Action_label)

(* An alphabetic homomorphism: [None] maps the action to the empty word. *)
type t = Action.t -> Action.t option

let identity : t = fun a -> Some a

(* Preserve exactly the listed actions, erase everything else — the
   homomorphism used in the paper to focus on one (minimum, maximum)
   pair.  The set is built once, when the homomorphism is constructed:
   the closure is applied once per transition of the behaviour, and a
   per-call list scan shows up in abstraction profiles. *)
let preserve actions : t =
  let keep = Action.Set.of_list actions in
  fun a -> if Action.Set.mem a keep then Some a else None

(* first binding wins, matching the order semantics of an assoc list *)
let rename_table assoc =
  List.fold_left
    (fun m (x, y) -> if Action.Map.mem x m then m else Action.Map.add x y m)
    Action.Map.empty assoc

(* The merge groups of a non-injective rename map: every target two or
   more distinct source actions end up on, with its sources.  A rename
   map is applied pointwise, so such a merge silently identifies words
   that the behaviour distinguishes — dependence verdicts read off the
   merged image are meaningless.  Actions of [alphabet] the map leaves
   untouched count as sources of themselves: renaming [a] onto an
   existing action [b] merges the two just as surely as mapping both
   onto a third symbol. *)
let rename_collisions ?(alphabet = []) assoc =
  let table = rename_table assoc in
  let add_source tgt src m =
    let srcs =
      Option.value (Action.Map.find_opt tgt m) ~default:Action.Set.empty
    in
    Action.Map.add tgt (Action.Set.add src srcs) m
  in
  let by_target =
    Action.Map.fold (fun src tgt m -> add_source tgt src m) table
      Action.Map.empty
  in
  let by_target =
    List.fold_left
      (fun m a -> if Action.Map.mem a table then m else add_source a a m)
      by_target alphabet
  in
  Action.Map.fold
    (fun tgt srcs acc ->
      if Action.Set.cardinal srcs > 1 then
        (tgt, Action.Set.elements srcs) :: acc
      else acc)
    by_target []
  |> List.rev

let rename assoc : t =
  let table = rename_table assoc in
  (* Within-map collisions are detectable without knowing the alphabet
     and are always a bug: refuse them instead of silently merging the
     sources (callers with an alphabet in hand should run
     {!rename_collisions} first for the full check). *)
  (match rename_collisions assoc with
  | [] -> ()
  | (tgt, srcs) :: _ ->
    invalid_arg
      (Fmt.str "Hom.rename: non-injective map merges %a into %a"
         Fmt.(list ~sep:comma Action.pp)
         srcs Action.pp tgt));
  fun a ->
    match Action.Map.find_opt a table with
    | Some y -> Some y
    | None -> Some a

let compose (h2 : t) (h1 : t) : t = fun a -> Option.bind (h1 a) h2

(* Restrictions of a homomorphism to a concrete alphabet, for static
   soundness checks: an abstraction that erases the whole alphabet (or
   preserves an action the alphabet does not contain) yields a vacuous
   minimal automaton and silently meaningless dependence verdicts. *)
let erased (h : t) alphabet =
  List.filter (fun a -> Option.is_none (h a)) alphabet

let preserved (h : t) alphabet =
  List.filter (fun a -> Option.is_some (h a)) alphabet

(* ------------------------------------------------------------------ *)
(* Application to behaviours                                            *)
(* ------------------------------------------------------------------ *)

(* The homomorphic image of a reachability graph, as an NFA with epsilon
   transitions.  The behaviour of an APA is prefix closed, hence every
   state accepts. *)
let image_nfa (h : t) lts =
  let n = Lts.nb_states lts in
  let edges =
    (* fold + rev keeps the edge order of [Lts.transitions] without
       materializing the transition list *)
    Lts.fold_transitions
      (fun tr acc -> (tr.Lts.t_src, h tr.Lts.t_label, tr.Lts.t_dst) :: acc)
      lts []
    |> List.rev
  in
  let all = List.init n Fun.id |> Fsa_automata.Automata.Int_set.of_list in
  A.Nfa.create ~nb_states:n
    ~start:(Fsa_automata.Automata.Int_set.singleton (Lts.initial lts))
    ~finals:all ~edges

(* The minimal deterministic automaton of the homomorphic image. *)
let minimal_automaton (h : t) lts =
  Span.with_ ~cat:"hom" "hom.minimal_automaton" @@ fun () ->
  Metrics.incr m_minimal_automata;
  let dfa = A.Dfa.minimize (A.Dfa.determinize (image_nfa h lts)) in
  Log.debug (fun m ->
      m "minimal automaton of %s image: %d states, %d transitions"
        (Lts.name lts) (A.Dfa.nb_states dfa) (A.Dfa.nb_transitions dfa));
  dfa

(* ------------------------------------------------------------------ *)
(* Functional dependence by abstraction                                 *)
(* ------------------------------------------------------------------ *)

(* Reading functional dependence off the abstract automaton: with the
   homomorphism preserving only {min, max}, the maximum depends on the
   minimum iff no accepted word contains [max] before the first [min] —
   graphically, iff every path of the minimal automaton reaches a
   [max]-edge only after a [min]-edge (Fig. 10), whereas independence shows
   as a diamond (Fig. 11). *)
let dfa_has_target_before_avoid dfa ~avoid ~target =
  let module IS = Fsa_automata.Automata.Int_set in
  (* [delta] is the DFA's per-state adjacency array — no rescan of the
     full transition list per visited state *)
  let delta = A.Dfa.delta dfa in
  let rec go visited frontier =
    match frontier with
    | [] -> false
    | s :: rest ->
      if IS.mem s visited then go visited rest
      else begin
        let visited = IS.add s visited in
        let hit = ref false in
        let next = ref rest in
        A.Lmap.iter
          (fun l d ->
            if Action.equal l target then hit := true
            else if not (Action.equal l avoid) then next := d :: !next)
          delta.(s);
        !hit || go visited !next
      end
  in
  go IS.empty [ A.Dfa.start dfa ]

(* Wall-clock breakdown of one abstraction-based dependence test: the
   four sub-phases the paper's tool pipeline spends its time in. *)
type dependence_timing = {
  dt_erase_ns : int64;
  dt_determinise_ns : int64;
  dt_minimise_ns : int64;
  dt_compare_ns : int64;
}

let depends_abstract_timed lts ~min_action ~max_action =
  Metrics.incr m_dependence_tests;
  let h = preserve [ min_action; max_action ] in
  let dfa, dt_erase_ns, dt_determinise_ns, dt_minimise_ns =
    (* same span and counter as [minimal_automaton], with per-stage
       clock readings in between *)
    Span.with_ ~cat:"hom" "hom.minimal_automaton" @@ fun () ->
    Metrics.incr m_minimal_automata;
    let t0 = Span.now_ns () in
    let nfa = image_nfa h lts in
    let t1 = Span.now_ns () in
    let det = A.Dfa.determinize nfa in
    let t2 = Span.now_ns () in
    let dfa = A.Dfa.minimize det in
    let t3 = Span.now_ns () in
    Log.debug (fun m ->
        m "minimal automaton of %s image: %d states, %d transitions"
          (Lts.name lts) (A.Dfa.nb_states dfa) (A.Dfa.nb_transitions dfa));
    (dfa, Int64.sub t1 t0, Int64.sub t2 t1, Int64.sub t3 t2)
  in
  let t3 = Span.now_ns () in
  let dep =
    not (dfa_has_target_before_avoid dfa ~avoid:min_action ~target:max_action)
  in
  let t4 = Span.now_ns () in
  ( dep,
    { dt_erase_ns;
      dt_determinise_ns;
      dt_minimise_ns;
      dt_compare_ns = Int64.sub t4 t3 } )

let depends_abstract lts ~min_action ~max_action =
  fst (depends_abstract_timed lts ~min_action ~max_action)

(* Testing each maximum against each minimum (Sect. 5.5): the dependence
   matrix of the behaviour. *)
let dependence_matrix lts ~minima ~maxima =
  List.map
    (fun mx ->
      (mx,
       List.map
         (fun mn -> (mn, depends_abstract lts ~min_action:mn ~max_action:mx))
         minima))
    maxima

(* ------------------------------------------------------------------ *)
(* Shared multi-pair abstraction engine                                 *)
(* ------------------------------------------------------------------ *)

(* Answering every (minimum, maximum) dependence pair from one pass over
   the behaviour, instead of erasing/determinising/minimising the full
   reachability graph once per pair.

   Soundness: write U for the union alphabet of all surviving pairs and
   h_U = preserve U, h_p = preserve {min, max} for a pair p with
   {min, max} <= U.  Then h_p = h_p . h_U, so

     h_p (L (lts)) = h_p (h_U (L (lts))) = h_p (L (shared_dfa)),

   and the minimal automaton of a pair computed from [shared_dfa] is the
   minimal automaton computed from the full behaviour (minimal DFAs are
   unique up to isomorphism).  For the verdict itself not even the
   per-pair projection is needed: in [dfa_has_target_before_avoid] a
   label that is neither [avoid] nor [target] is traversed freely —
   exactly what erasing it would do — so running the search directly on
   the shared DFA returns the same answer as running it on the pair's
   minimal automaton. *)

module Pair_set = Set.Make (struct
  type t = Action.t * Action.t

  let compare (a1, b1) (a2, b2) =
    match Action.compare a1 a2 with 0 -> Action.compare b1 b2 | c -> c
end)

module Shared = struct
  type build_timing = {
    sb_erase_ns : int64;
    sb_determinise_ns : int64;
    sb_minimise_ns : int64;
    sb_early_ns : int64;
  }

  (* Interned view of the shared quotient for per-pair projections:
     letters as dense ids, per-state successors as flat arrays.  Built
     once per engine on first use, after which each projection is a
     bitset subset construction whose hot path compares ints only — no
     [Action] comparisons, no per-pair edge re-classification. *)
  type proj_index = {
    px_ids : int Action.Map.t;  (* letter -> dense id *)
    px_succ : (int * int) array array;  (* state -> [(letter id, dst)] *)
    px_final : bool array;
  }

  type engine = {
    sh_alphabet : Action.Set.t;
    sh_dfa : A.Dfa.t;
    sh_cached : bool;
    sh_timing : build_timing;
    sh_early : Pair_set.t;
    mutable sh_proj : proj_index option;
  }

  let zero_timing =
    { sb_erase_ns = 0L;
      sb_determinise_ns = 0L;
      sb_minimise_ns = 0L;
      sb_early_ns = 0L }

  (* On-the-fly dependence evaluation during the single pass: a pair
     (min, max) is already decided independent as soon as the pass
     witnesses a path that reaches a [max]-labelled transition without
     traversing [min] (the same condition [dfa_has_target_before_avoid]
     searches for, evaluated on the graph instead of the quotient).  One
     monotone bitset fixpoint decides every such pair at once:
     avoid.(s) is the set of minima some path from the initial state to
     [s] avoids entirely — seeded with all minima at the initial state,
     propagated along each edge minus the edge's own label.  A pair
     (mn, mx) is independent iff some mx-edge leaves a state whose
     avoid-set contains mn.  The "dependent" direction is never decided
     early: it is a property of all paths and needs the full image. *)
  let early_pass ~minima ~maxima lts =
    let mins = Array.of_list minima in
    let k = Array.length mins in
    if k = 0 || maxima = [] then Pair_set.empty
    else begin
      let min_index =
        let m = ref Action.Map.empty in
        Array.iteri (fun i a -> m := Action.Map.add a i !m) mins;
        !m
      in
      let bits_per_word = 62 in
      let words = (k + bits_per_word - 1) / bits_per_word in
      let n = Lts.nb_states lts in
      (* avoid is a flattened [n] x [words] bit matrix *)
      let avoid = Array.make (n * words) 0 in
      let full_word = (1 lsl bits_per_word) - 1 in
      let last_mask =
        let r = k mod bits_per_word in
        if r = 0 then full_word else (1 lsl r) - 1
      in
      let init = Lts.initial lts in
      for w = 0 to words - 1 do
        avoid.((init * words) + w) <-
          (if w = words - 1 then last_mask else full_word)
      done;
      let succ = Lts.succ lts in
      let queue = Queue.create () in
      let queued = Bytes.make n '\000' in
      Queue.add init queue;
      Bytes.set queued init '\001';
      while not (Queue.is_empty queue) do
        let s = Queue.pop queue in
        Bytes.set queued s '\000';
        List.iter
          (fun tr ->
            let d = tr.Lts.t_dst in
            let label_bit = Action.Map.find_opt tr.Lts.t_label min_index in
            let changed = ref false in
            for w = 0 to words - 1 do
              let contrib =
                let v = avoid.((s * words) + w) in
                match label_bit with
                | Some b when b / bits_per_word = w ->
                  v land lnot (1 lsl (b mod bits_per_word))
                | _ -> v
              in
              let cur = avoid.((d * words) + w) in
              let merged = cur lor contrib in
              if merged <> cur then begin
                avoid.((d * words) + w) <- merged;
                changed := true
              end
            done;
            if !changed && Bytes.get queued d = '\000' then begin
              Bytes.set queued d '\001';
              Queue.add d queue
            end)
          (succ s)
      done;
      let maxima_set = Action.Set.of_list maxima in
      Lts.fold_transitions
        (fun tr acc ->
          if Action.Set.mem tr.Lts.t_label maxima_set then begin
            let s = tr.Lts.t_src in
            let acc = ref acc in
            for i = 0 to k - 1 do
              let w = i / bits_per_word and b = i mod bits_per_word in
              if avoid.((s * words) + w) land (1 lsl b) <> 0 then
                acc := Pair_set.add (mins.(i), tr.Lts.t_label) !acc
            done;
            !acc
          end
          else acc)
        lts Pair_set.empty
    end

  (* Build the engine: erase the behaviour once to the union alphabet,
     determinise and minimise the shared image, and run the on-the-fly
     early-decision pass over the graph.  With [?dfa] (a cache hit for
     the shared quotient) the graph is not walked at all — every pair is
     then decided on the shared DFA, which returns the same verdicts. *)
  let build ?dfa ~alphabet ~minima ~maxima lts =
    Metrics.incr m_shared_builds;
    match dfa with
    | Some d ->
      { sh_alphabet = alphabet;
        sh_dfa = d;
        sh_cached = true;
        sh_timing = zero_timing;
        sh_early = Pair_set.empty;
        sh_proj = None }
    | None ->
      Span.with_ ~cat:"hom" "hom.shared_build" @@ fun () ->
      let h = preserve (Action.Set.elements alphabet) in
      let t0 = Span.now_ns () in
      let nfa = image_nfa h lts in
      let t1 = Span.now_ns () in
      let det = A.Dfa.determinize nfa in
      let t2 = Span.now_ns () in
      let d = A.Dfa.minimize det in
      let t3 = Span.now_ns () in
      let early = early_pass ~minima ~maxima lts in
      let t4 = Span.now_ns () in
      Metrics.incr ~by:(Pair_set.cardinal early) m_early_decisions;
      Log.debug (fun m ->
          m
            "shared abstraction of %s: |alphabet|=%d, %d states, %d \
             transitions, %d pairs decided early"
            (Lts.name lts)
            (Action.Set.cardinal alphabet)
            (A.Dfa.nb_states d) (A.Dfa.nb_transitions d)
            (Pair_set.cardinal early));
      { sh_alphabet = alphabet;
        sh_dfa = d;
        sh_cached = false;
        sh_timing =
          { sb_erase_ns = Int64.sub t1 t0;
            sb_determinise_ns = Int64.sub t2 t1;
            sb_minimise_ns = Int64.sub t3 t2;
            sb_early_ns = Int64.sub t4 t3 };
        sh_early = early;
        sh_proj = None }

  let alphabet e = e.sh_alphabet
  let dfa e = e.sh_dfa
  let cached e = e.sh_cached
  let timing e = e.sh_timing
  let early_count e = Pair_set.cardinal e.sh_early

  let check_pair e ~min_action ~max_action =
    if
      not
        (Action.Set.mem min_action e.sh_alphabet
        && Action.Set.mem max_action e.sh_alphabet)
    then
      invalid_arg
        (Fmt.str "Hom.Shared: pair (%a, %a) outside the shared alphabet"
           Action.pp min_action Action.pp max_action)

  let depends_timed e ~min_action ~max_action =
    check_pair e ~min_action ~max_action;
    Metrics.incr m_dependence_tests;
    let t0 = Span.now_ns () in
    let dep =
      if Pair_set.mem (min_action, max_action) e.sh_early then false
      else
        not
          (dfa_has_target_before_avoid e.sh_dfa ~avoid:min_action
             ~target:max_action)
    in
    let t1 = Span.now_ns () in
    ( dep,
      (* the erase/determinise/minimise work happened once, in [build];
         per-pair rows carry only the genuinely per-pair compare time *)
      { dt_erase_ns = 0L;
        dt_determinise_ns = 0L;
        dt_minimise_ns = 0L;
        dt_compare_ns = Int64.sub t1 t0 } )

  let depends e ~min_action ~max_action =
    fst (depends_timed e ~min_action ~max_action)

  (* The pair's minimal automaton, projected from the shared quotient
     instead of recomputed from the behaviour — isomorphic to
     [minimal_automaton (preserve [min; max]) lts] by h_p = h_p . h_U
     and uniqueness of the minimal DFA. *)
  let proj_index e =
    match e.sh_proj with
    | Some px -> px
    | None ->
      let d = e.sh_dfa in
      let module IS = Fsa_automata.Automata.Int_set in
      let ids = ref Action.Map.empty in
      let nb = ref 0 in
      let id_of l =
        match Action.Map.find_opt l !ids with
        | Some i -> i
        | None ->
          let i = !nb in
          incr nb;
          ids := Action.Map.add l i !ids;
          i
      in
      let succ =
        Array.map
          (fun m ->
            Array.of_list
              (A.Lmap.fold (fun l dst acc -> (id_of l, dst) :: acc) m []))
          (A.Dfa.delta d)
      in
      let final = Array.make (A.Dfa.nb_states d) false in
      IS.iter (fun s -> final.(s) <- true) (A.Dfa.finals d);
      let px = { px_ids = !ids; px_succ = succ; px_final = final } in
      e.sh_proj <- Some px;
      px

  (* The pair projection of the shared quotient, before minimisation:
     the same subset construction as [A.project (preserve [min; max])]
     but over the interned {!proj_index}, so the epsilon closures — the
     per-pair hot path — compare dense letter ids instead of actions.
     A pair letter absent from the quotient's transitions gets id [-1],
     which matches no edge: exactly the semantics of an unexercised
     letter. *)
  let project_pair e ~min_action ~max_action =
    let px = proj_index e in
    let module IS = Fsa_automata.Automata.Int_set in
    let lid a =
      match Action.Map.find_opt a px.px_ids with Some i -> i | None -> -1
    in
    let mn = lid min_action and mx = lid max_action in
    let n = Array.length px.px_succ in
    let nbytes = (n + 7) / 8 in
    let closure seeds =
      let bits = Bytes.make nbytes '\000' in
      let members = ref [] in
      let is_final = ref false in
      let rec visit s =
        let i = s lsr 3 and m = 1 lsl (s land 7) in
        let b = Char.code (Bytes.unsafe_get bits i) in
        if b land m = 0 then begin
          Bytes.unsafe_set bits i (Char.unsafe_chr (b lor m));
          members := s :: !members;
          if px.px_final.(s) then is_final := true;
          let succ = px.px_succ.(s) in
          for k = 0 to Array.length succ - 1 do
            let l, dst = succ.(k) in
            if l <> mn && l <> mx then visit dst
          done
        end
      in
      List.iter visit seeds;
      (Bytes.unsafe_to_string bits, !members, !is_final)
    in
    let index : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let finals_acc = ref IS.empty in
    let nb = ref 0 in
    let queue = Queue.create () in
    let intern (key, members, fin) =
      match Hashtbl.find_opt index key with
      | Some id -> id
      | None ->
        let id = !nb in
        incr nb;
        Hashtbl.add index key id;
        if fin then finals_acc := IS.add id !finals_acc;
        Queue.add (id, members) queue;
        id
    in
    let start = intern (closure [ A.Dfa.start e.sh_dfa ]) in
    let delta_acc = ref [] in
    while not (Queue.is_empty queue) do
      let id, members = Queue.pop queue in
      let mn_seeds = ref [] and mx_seeds = ref [] in
      List.iter
        (fun s ->
          let succ = px.px_succ.(s) in
          for k = 0 to Array.length succ - 1 do
            let l, dst = succ.(k) in
            if l = mn then mn_seeds := dst :: !mn_seeds
            else if l = mx then mx_seeds := dst :: !mx_seeds
          done)
        members;
      let trans = ref A.Lmap.empty in
      if !mn_seeds <> [] then
        trans := A.Lmap.add min_action (intern (closure !mn_seeds)) !trans;
      if !mx_seeds <> [] then
        trans := A.Lmap.add max_action (intern (closure !mx_seeds)) !trans;
      delta_acc := (id, !trans) :: !delta_acc
    done;
    let delta = Array.make !nb A.Lmap.empty in
    List.iter (fun (id, m) -> delta.(id) <- m) !delta_acc;
    A.Dfa.create ~nb_states:!nb ~start ~finals:!finals_acc ~delta

  let minimal_automaton e ~min_action ~max_action =
    check_pair e ~min_action ~max_action;
    Metrics.incr m_minimal_automata;
    A.Dfa.minimize (project_pair e ~min_action ~max_action)
end

(* ------------------------------------------------------------------ *)
(* Simplicity of homomorphisms                                          *)
(* ------------------------------------------------------------------ *)

(* The SH verification tool checks "simplicity" of a homomorphism: a
   sufficient condition under which satisfaction of properties on the
   abstract level carries over (approximately) to the concrete level.  We
   implement the weak continuation-closure check on the product of the
   concrete behaviour with the minimal automaton of its image:

     for every reachable product state (q, m) and every abstract action x
     enabled in m, some concrete path from q of erased transitions
     followed by one transition t with h(t) = x must exist.

   If this holds everywhere, every abstract continuation is realisable
   from every concrete representative, so the abstraction adds no spurious
   decisions: h is simple on the given behaviour. *)
let is_simple (h : t) lts =
  let dfa = minimal_automaton h lts in
  let module IS = Fsa_automata.Automata.Int_set in
  (* the graph already indexes transitions by source state *)
  let succ = Lts.succ lts in
  let delta = A.Dfa.delta dfa in
  (* abstract letters enabled in a DFA state *)
  let enabled m = List.map fst (A.Lmap.bindings delta.(m)) in
  (* can concrete state q produce abstract letter x after erased steps? *)
  let can_produce q x =
    let rec go visited = function
      | [] -> false
      | s :: rest ->
        if IS.mem s visited then go visited rest
        else begin
          let visited = IS.add s visited in
          let hit = ref false in
          let next = ref rest in
          List.iter
            (fun tr ->
              match h tr.Lts.t_label with
              | Some y when Action.equal y x -> hit := true
              | Some _ -> ()
              | None -> next := tr.Lts.t_dst :: !next)
            (succ s);
          !hit || go visited !next
        end
    in
    go IS.empty [ q ]
  in
  (* BFS over reachable product states *)
  let module PS = Set.Make (struct
    type t = int * int

    let compare = Stdlib.compare
  end) in
  let step_abstract m l = A.Dfa.step dfa m l in
  let ok = ref true in
  let visited = ref PS.empty in
  let queue = Queue.create () in
  Queue.add (Lts.initial lts, A.Dfa.start dfa) queue;
  while (not (Queue.is_empty queue)) && !ok do
    let (q, m) as ps = Queue.pop queue in
    if not (PS.mem ps !visited) then begin
      visited := PS.add ps !visited;
      List.iter
        (fun x -> if not (can_produce q x) then ok := false)
        (enabled m);
      List.iter
        (fun tr ->
          match h tr.Lts.t_label with
          | None -> Queue.add (tr.Lts.t_dst, m) queue
          | Some x -> (
            match step_abstract m x with
            | Some m' -> Queue.add (tr.Lts.t_dst, m') queue
            | None -> ok := false (* image outside abstract language *)))
        (succ q)
    end
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let dot ?(name = "minimal_automaton") (h : t) lts =
  A.Dfa.dot ~name (minimal_automaton h lts)

(* A compact description of the shape of a minimal automaton, used to
   compare against the figures of the paper. *)
let describe_dfa dfa =
  Fmt.str "%d states, %d transitions, %d final" (A.Dfa.nb_states dfa)
    (A.Dfa.nb_transitions dfa)
    (Fsa_automata.Automata.Int_set.cardinal (A.Dfa.finals dfa))
