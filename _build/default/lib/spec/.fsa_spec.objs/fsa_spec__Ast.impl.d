lib/spec/ast.ml: Fmt Loc
