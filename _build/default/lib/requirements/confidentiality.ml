(* Confidentiality requirements — the dual analysis sketched as future work
   in Sect. 6 of the paper.

   Authenticity requirements follow the functional flow *backwards* from a
   safety-critical output to the inputs it depends on.  Confidentiality
   requirements follow the same flow *forwards*: information that enters
   the system at an input action may propagate to every output action that
   functionally depends on it, so every such output must only be observable
   by agents cleared for the input's classification.

   We implement a small Denning-style lattice analysis on the functional
   dependency graph:

   - inputs carry a classification level,
   - outputs carry an observer clearance,
   - the inferred level of an output is the join of the levels of all
     inputs it depends on,
   - each (confidential input, dependent output) pair yields a
     confidentiality requirement conf(x, y, observers(y)),
   - an output whose clearance is below its inferred level is a violation
     that the architecture must resolve (declassification, filtering or
     channel protection). *)

module Action = Fsa_term.Action
module Agent = Fsa_term.Agent
module AG = Fsa_model.Action_graph

(* ------------------------------------------------------------------ *)
(* Classification lattice                                              *)
(* ------------------------------------------------------------------ *)

type level = Public | Internal | Confidential | Secret

let level_order = function
  | Public -> 0
  | Internal -> 1
  | Confidential -> 2
  | Secret -> 3

let compare_level a b = Int.compare (level_order a) (level_order b)
let leq_level a b = level_order a <= level_order b
let join a b = if leq_level a b then b else a

let joins = List.fold_left join Public

let pp_level ppf = function
  | Public -> Fmt.string ppf "public"
  | Internal -> Fmt.string ppf "internal"
  | Confidential -> Fmt.string ppf "confidential"
  | Secret -> Fmt.string ppf "secret"

(* ------------------------------------------------------------------ *)
(* Labelling                                                           *)
(* ------------------------------------------------------------------ *)

type labelling = {
  source_level : Action.t -> level;
      (* classification of the information entering at an input action *)
  sink_clearance : Action.t -> level;
      (* clearance of the observers of an output action *)
  observers : Action.t -> Agent.t;
      (* who observes the output — the stakeholder of the requirement *)
}

let default_labelling =
  { source_level = (fun _ -> Internal);
    sink_clearance = (fun _ -> Internal);
    observers =
      (fun a ->
        match Action.actor a with
        | Some actor -> actor
        | None -> Agent.unindexed "ENV") }

(* ------------------------------------------------------------------ *)
(* Requirements                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  source : Action.t;
  sink : Action.t;
  level : level;  (* classification of the protected information *)
  observer : Agent.t;  (* who may learn it at the sink *)
}

let compare a b =
  let c = Action.compare a.source b.source in
  if c <> 0 then c
  else
    let c = Action.compare a.sink b.sink in
    if c <> 0 then c
    else
      let c = compare_level a.level b.level in
      if c <> 0 then c else Agent.compare a.observer b.observer

let equal a b = compare a b = 0

let pp ppf t =
  Fmt.pf ppf "conf(%a, %a, %a) [%a]" Action.pp t.source Action.pp t.sink
    Agent.pp t.observer pp_level t.level

let pp_prose ppf t =
  Fmt.pf ppf
    "Information of level %a entering at %a reaches %a: only %a (clearance \
     permitting) may observe that output."
    pp_level t.level Action.pp t.source Action.pp t.sink Agent.pp t.observer

(* ------------------------------------------------------------------ *)
(* Derivation                                                          *)
(* ------------------------------------------------------------------ *)

(* The forward image of chi: every (input, output) pair of the partial
   order yields a confidentiality requirement for inputs classified above
   [threshold] (default: everything above Public). *)
let derive ?(labelling = default_labelling) ?(threshold = Internal) sos =
  let poset = Fsa_model.Sos.poset sos in
  AG.P.chi poset
  |> List.filter_map (fun (x, y) ->
         let level = labelling.source_level x in
         if Action.equal x y || not (leq_level threshold level) then None
         else
           Some
             { source = x; sink = y; level;
               observer = labelling.observers y })
  |> List.sort_uniq compare

(* The inferred level of each output: join over the reaching inputs. *)
let inferred_levels ?(labelling = default_labelling) sos =
  let poset = Fsa_model.Sos.poset sos in
  let maxima = AG.P.Eset.elements (AG.P.maxima poset) in
  List.map
    (fun y ->
      let sources =
        AG.P.Eset.elements (AG.P.minima poset)
        |> List.filter (fun x -> AG.P.lt x y poset)
      in
      (y, joins (List.map labelling.source_level sources)))
    maxima

type violation = {
  v_sink : Action.t;
  v_inferred : level;
  v_clearance : level;
  v_sources : Action.t list;  (* the inputs above the sink's clearance *)
}

let pp_violation ppf v =
  Fmt.pf ppf
    "output %a has clearance %a but receives %a information (from %a)"
    Action.pp v.v_sink pp_level v.v_clearance pp_level v.v_inferred
    Fmt.(list ~sep:comma Action.pp)
    v.v_sources

(* Outputs whose observers are not cleared for the information that can
   reach them. *)
let violations ?(labelling = default_labelling) sos =
  let poset = Fsa_model.Sos.poset sos in
  inferred_levels ~labelling sos
  |> List.filter_map (fun (y, inferred) ->
         let clearance = labelling.sink_clearance y in
         if leq_level inferred clearance then None
         else
           let sources =
             AG.P.Eset.elements (AG.P.minima poset)
             |> List.filter (fun x ->
                    AG.P.lt x y poset
                    && not (leq_level (labelling.source_level x) clearance))
           in
           Some
             { v_sink = y; v_inferred = inferred; v_clearance = clearance;
               v_sources = sources })

let pp_set ppf reqs =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut (fun ppf r -> Fmt.pf ppf "- %a" pp r))
    (List.sort_uniq compare reqs)
