test/test_apa_of_model.ml: Alcotest Fsa_apa Fsa_core Fsa_grid Fsa_lts Fsa_model Fsa_term Fsa_vanet List QCheck2 QCheck_alcotest Test_random
