(** Property-specification patterns (Dwyer et al.) over action languages.

    Safety patterns (absence, universality, precedence) are checked by
    language containment of the prefix-closed behaviour in the property
    automaton; liveness patterns (existence, response) by containment of
    the maximal-trace language (runs ending in a dead state).  Violations
    come with a shortest counterexample trace. *)

module Action = Fsa_term.Action
module Lts = Fsa_lts.Lts
module A = Fsa_hom.Hom.A

type pred = { pred_name : string; holds : Action.t -> bool }

val pred : string -> (Action.t -> bool) -> pred
val action_is : Action.t -> pred

type body =
  | Absence of pred
  | Universality of pred
  | Existence of pred
  | Precedence of pred * pred
      (** [Precedence (s, p)]: p occurs only after s has occurred. *)
  | Response of pred * pred
      (** [Response (s, p)]: every s is eventually followed by p. *)

type scope =
  | Globally
  | Before of pred
      (** The segment strictly before the first occurrence; liveness
          obligations must be fulfilled before it (or by trace end). *)
  | After of pred  (** The segment strictly after the first occurrence. *)

type t = { body : body; scope : scope }

val make : ?scope:scope -> body -> t
val is_liveness : t -> bool
val pp_body : body Fmt.t
val pp_scope : scope Fmt.t
val pp : t Fmt.t

val property_dfa : alphabet:Action.t list -> t -> A.Dfa.t
(** The pattern as a DFA over a concrete alphabet. *)

val behaviour_nfa : maximal:bool -> Lts.t -> A.Nfa.t

val holds_abstract : Fsa_hom.Hom.t -> Lts.t -> t -> bool
(** Safety patterns on the homomorphic image of a behaviour.
    @raise Invalid_argument on liveness patterns. *)

type result = { holds_ : bool; counterexample : Action.t list option }

val check : Lts.t -> t -> result
val holds : Lts.t -> t -> bool
val pp_result : result Fmt.t
